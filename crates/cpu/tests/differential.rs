//! Differential testing: random instruction sequences must retire
//! identically on the gate-level netlists and the golden instruction-set
//! simulators. This is the deepest cross-check of the datapaths — every
//! ALU operation, addressing mode, and branch decision is exercised with
//! random operands.

use proptest::prelude::*;
use symsim_cpu::{bm32, dr5, omsp16};
use symsim_logic::{Value, Word};
use symsim_sim::{SimConfig, Simulator};

/// A random omsp16 program: straight-line arithmetic/memory instructions
/// over small operands, ending in `halt`. Branches are emitted only as a
/// final skip-forward so the program always terminates.
fn arb_omsp16_program() -> impl Strategy<Value = String> {
    let instr = (0u8..12, 0u32..8, 0u32..8, 0i64..64).prop_map(|(op, rd, rs, imm)| match op {
        0 => format!("movi r{rd}, {imm}"),
        1 => format!("mov r{rd}, r{rs}"),
        2 => format!("add r{rd}, r{rs}"),
        3 => format!("addi r{rd}, {imm}"),
        4 => format!("sub r{rd}, r{rs}"),
        5 => format!("and r{rd}, r{rs}"),
        6 => format!("or r{rd}, r{rs}"),
        7 => format!("xor r{rd}, r{rs}"),
        8 => format!("shl r{rd}"),
        9 => format!("shr r{rd}"),
        10 => format!("st r{rd}, {}(r{rs})", imm % 32),
        _ => format!("ld r{rd}, {}(r{rs})", imm % 32),
    });
    prop::collection::vec(instr, 1..40).prop_map(|mut lines| {
        // make addresses deterministic-ish: seed r0..r7 with known values
        let mut src = String::new();
        for r in 0..8 {
            src.push_str(&format!("movi r{r}, {}\n", r * 3 + 1));
        }
        lines.push("halt".to_string());
        src.push_str(&lines.join("\n"));
        src
    })
}

fn arb_bm32_program() -> impl Strategy<Value = String> {
    let instr =
        (0u8..14, 0u32..16, 0u32..16, 0u32..16, 0i64..64).prop_map(|(op, a, b, c, imm)| match op {
            0 => format!("li ${a}, {imm}"),
            1 => format!("add ${a}, ${b}, ${c}"),
            2 => format!("addi ${a}, ${b}, {imm}"),
            3 => format!("sub ${a}, ${b}, ${c}"),
            4 => format!("and ${a}, ${b}, ${c}"),
            5 => format!("or ${a}, ${b}, ${c}"),
            6 => format!("xor ${a}, ${b}, ${c}"),
            7 => format!("slt ${a}, ${b}, ${c}"),
            8 => format!("sltu ${a}, ${b}, ${c}"),
            9 => format!("sll ${a}, ${b}, {}", imm % 32),
            10 => format!("srl ${a}, ${b}, {}", imm % 32),
            11 => format!("sra ${a}, ${b}, {}", imm % 32),
            12 => format!("sw ${a}, {}(${b})", imm % 32),
            _ => format!("lw ${a}, {}(${b})", imm % 32),
        });
    prop::collection::vec(instr, 1..40).prop_map(|mut lines| {
        let mut src = String::new();
        for r in 1..16 {
            src.push_str(&format!("li ${r}, {}\n", r * 5 + 2));
        }
        lines.push("mult $1, $2".to_string());
        lines.push("mflo $3".to_string());
        lines.push("mfhi $4".to_string());
        lines.push("halt".to_string());
        src.push_str(&lines.join("\n"));
        src
    })
}

fn arb_dr5_program() -> impl Strategy<Value = String> {
    let instr =
        (0u8..14, 0u32..16, 0u32..16, 0u32..16, 0i64..64).prop_map(|(op, a, b, c, imm)| match op {
            0 => format!("li x{a}, {imm}"),
            1 => format!("add x{a}, x{b}, x{c}"),
            2 => format!("addi x{a}, x{b}, {imm}"),
            3 => format!("sub x{a}, x{b}, x{c}"),
            4 => format!("and x{a}, x{b}, x{c}"),
            5 => format!("or x{a}, x{b}, x{c}"),
            6 => format!("xor x{a}, x{b}, x{c}"),
            7 => format!("slt x{a}, x{b}, x{c}"),
            8 => format!("sltu x{a}, x{b}, x{c}"),
            9 => format!("slli x{a}, x{b}, {}", imm % 32),
            10 => format!("srl x{a}, x{b}, x{c}"),
            11 => format!("srai x{a}, x{b}, {}", imm % 32),
            12 => format!("sw x{a}, {}(x{b})", imm % 32),
            _ => format!("lw x{a}, {}(x{b})", imm % 32),
        });
    prop::collection::vec(instr, 1..40).prop_map(|mut lines| {
        let mut src = String::new();
        for r in 1..16 {
            src.push_str(&format!("li x{r}, {}\n", r * 7 + 3));
        }
        lines.push("csrw 3, x5".to_string()); // exercise the CSR write path
        lines.push("halt".to_string());
        src.push_str(&lines.join("\n"));
        src
    })
}

/// Runs the gate-level netlist with zeroed registers/memory for `cycles`.
fn run_gate_level<'a>(cpu: &'a symsim_cpu::Cpu, program: &[u32], cycles: u64) -> Simulator<'a> {
    let mut sim = Simulator::new(&cpu.netlist, SimConfig::default());
    for (i, &w) in program.iter().enumerate() {
        sim.write_mem_word(cpu.pmem, i, &Word::from_u64(w as u64, 32));
    }
    let pdepth = cpu.netlist.memories()[cpu.pmem].depth;
    for i in program.len()..pdepth {
        sim.write_mem_word(cpu.pmem, i, &Word::from_u64(0, 32));
    }
    let depth = cpu.netlist.memories()[cpu.dmem].depth;
    for a in 0..depth {
        sim.write_mem_word(cpu.dmem, a, &Word::from_u64(0, cpu.data_width));
    }
    for reg in &cpu.reg_nets {
        for &bit in reg {
            sim.poke(bit, Value::ZERO);
        }
    }
    for &inp in cpu.netlist.inputs() {
        sim.poke(inp, Value::ZERO);
    }
    sim.settle();
    for _ in 0..cycles {
        sim.step_cycle();
    }
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn omsp16_matches_iss_on_random_programs(src in arb_omsp16_program()) {
        let cpu = omsp16::build();
        let program = omsp16::assemble(&src).expect("generated program assembles");
        let cycles = program.len() as u64 + 8;
        let mut iss = omsp16::Iss::new(&program);
        for _ in 0..cycles {
            iss.step();
        }
        let sim = run_gate_level(&cpu, &program, cycles);
        for r in 0..8 {
            prop_assert_eq!(
                cpu.read_reg(&sim, r).to_u64(),
                Some(iss.regs[r] as u64),
                "r{} diverged on:\n{}", r, src
            );
        }
        for a in 0..64 {
            prop_assert_eq!(
                cpu.read_data(&sim, a).to_u64(),
                Some(iss.mem[a] as u64),
                "mem[{}] diverged on:\n{}", a, src
            );
        }
        prop_assert_eq!(
            sim.read_net(cpu.finish).to_bool(),
            Some(iss.halted),
            "halt state diverged"
        );
    }

    #[test]
    fn bm32_matches_iss_on_random_programs(src in arb_bm32_program()) {
        let cpu = bm32::build();
        let program = bm32::assemble(&src).expect("generated program assembles");
        let cycles = program.len() as u64 + 8;
        let mut iss = bm32::Iss::new(&program);
        for _ in 0..cycles {
            iss.step();
        }
        let sim = run_gate_level(&cpu, &program, cycles);
        for r in 0..16 {
            prop_assert_eq!(
                cpu.read_reg(&sim, r).to_u64(),
                Some(iss.regs[r] as u64),
                "${} diverged on:\n{}", r, src
            );
        }
        for a in 0..64 {
            prop_assert_eq!(
                cpu.read_data(&sim, a).to_u64(),
                Some(iss.mem[a] as u64),
                "mem[{}] diverged on:\n{}", a, src
            );
        }
    }

    #[test]
    fn dr5_matches_iss_on_random_programs(src in arb_dr5_program()) {
        let cpu = dr5::build();
        let program = dr5::assemble(&src).expect("generated program assembles");
        let cycles = program.len() as u64 + 8;
        let mut iss = dr5::Iss::new(&program);
        for _ in 0..cycles {
            iss.step();
        }
        let sim = run_gate_level(&cpu, &program, cycles);
        for r in 0..16 {
            prop_assert_eq!(
                cpu.read_reg(&sim, r).to_u64(),
                Some(iss.regs[r] as u64),
                "x{} diverged on:\n{}", r, src
            );
        }
        for a in 0..64 {
            prop_assert_eq!(
                cpu.read_data(&sim, a).to_u64(),
                Some(iss.mem[a] as u64),
                "mem[{}] diverged on:\n{}", a, src
            );
        }
    }
}
