//! Gate-level and co-analysis coverage for the extension benchmarks
//! (crc16, fir, blink).

use symsim_core::{CoAnalysis, CoAnalysisConfig};
use symsim_cpu::{bm32, dr5, omsp16, Benchmark, Cpu};
use symsim_sim::{HaltReason, SimConfig, Simulator};

fn gate_level_run<'n>(cpu: &'n Cpu, bench: &Benchmark, program: &[u32]) -> Simulator<'n> {
    let mut sim = Simulator::new(&cpu.netlist, SimConfig::default());
    cpu.prepare_concrete(&mut sim, program, &bench.data, &bench.example_inputs);
    sim.set_finish_net(cpu.finish);
    let halt = sim.run(bench.max_cycles);
    assert_eq!(halt, HaltReason::Finished, "{} must finish", bench.name);
    sim
}

#[test]
fn blink_exercises_timer_and_gpio_at_gate_level() {
    let cpu = omsp16::build();
    let bench = omsp16::extended_benchmarks()
        .into_iter()
        .find(|b| b.name == "blink")
        .expect("blink exists");
    let program = omsp16::assemble(bench.source).expect("assembles");

    // golden model comparison including the peripheral state
    let mut iss = omsp16::Iss::new(&program);
    assert!(iss.run(bench.max_cycles));
    let sim = gate_level_run(&cpu, &bench, &program);
    let gpio = sim
        .read_bus_by_name("gpio_out", 16)
        .expect("gpio_out register");
    assert_eq!(gpio.to_u64(), Some(iss.gpio_out as u64));
    assert_eq!(gpio.to_u64(), Some(1), "three toggles leave bit 0 high");
    let timer = sim
        .read_bus_by_name("timer_cnt", 16)
        .expect("timer counter");
    assert_eq!(timer.to_u64(), Some(iss.timer_cnt as u64));
}

#[test]
fn blink_keeps_peripherals_exercisable() {
    // co-analysis of blink (no symbolic inputs: the timer drives control
    // flow deterministically) must mark the timer exercisable, giving a
    // smaller reduction than div, which ignores all peripherals
    let cpu = omsp16::build();
    let run = |bench: &Benchmark| {
        let program = omsp16::assemble(bench.source).expect("assembles");
        let config = CoAnalysisConfig {
            max_cycles_per_segment: bench.max_cycles,
            ..CoAnalysisConfig::default()
        };
        CoAnalysis::new(&cpu.netlist, cpu.interface(), config)
            .expect("valid config")
            .run(|sim| cpu.prepare_symbolic(sim, &program, &bench.data))
    };
    let blink = run(&omsp16::extended_benchmarks()[2]);
    let div = run(&omsp16::benchmark("div"));
    assert!(blink.converged() && div.converged());
    assert!(
        blink.exercisable_gates > div.exercisable_gates,
        "blink ({}) must exercise more gates than div ({})",
        blink.exercisable_gates,
        div.exercisable_gates
    );
}

#[test]
fn crc16_gate_level_matches_iss_everywhere() {
    // omsp16
    {
        let cpu = omsp16::build();
        let bench = omsp16::extended_benchmarks()[0].clone();
        let program = omsp16::assemble(bench.source).expect("assembles");
        let mut iss = omsp16::Iss::new(&program);
        for (&a, &v) in bench.data.inputs.iter().zip(&bench.example_inputs) {
            iss.write_mem(a, v as u16);
        }
        assert!(iss.run(bench.max_cycles));
        let sim = gate_level_run(&cpu, &bench, &program);
        assert_eq!(cpu.read_data(&sim, 1).to_u64(), Some(iss.mem[1] as u64));
    }
    // bm32
    {
        let cpu = bm32::build();
        let bench = bm32::extended_benchmarks()[0].clone();
        let program = bm32::assemble(bench.source).expect("assembles");
        let mut iss = bm32::Iss::new(&program);
        for (&a, &v) in bench.data.inputs.iter().zip(&bench.example_inputs) {
            iss.write_mem(a, v as u32);
        }
        assert!(iss.run(bench.max_cycles));
        let sim = gate_level_run(&cpu, &bench, &program);
        assert_eq!(cpu.read_data(&sim, 1).to_u64(), Some(iss.mem[1] as u64));
    }
    // dr5
    {
        let cpu = dr5::build();
        let bench = dr5::extended_benchmarks()[0].clone();
        let program = dr5::assemble(bench.source).expect("assembles");
        let mut iss = dr5::Iss::new(&program);
        for (&a, &v) in bench.data.inputs.iter().zip(&bench.example_inputs) {
            iss.write_mem(a, v as u32);
        }
        assert!(iss.run(bench.max_cycles));
        let sim = gate_level_run(&cpu, &bench, &program);
        assert_eq!(cpu.read_data(&sim, 1).to_u64(), Some(iss.mem[1] as u64));
    }
}

#[test]
fn fir_gate_level_matches_iss_on_multiplier_cpus() {
    // omsp16 routes through the memory-mapped multiplier; bm32 through
    // MULT/MFLO (dr5's software-multiply FIR is covered at the ISS level
    // and by the shared datapath differential tests)
    {
        let cpu = omsp16::build();
        let bench = omsp16::extended_benchmarks()[1].clone();
        let program = omsp16::assemble(bench.source).expect("assembles");
        let mut iss = omsp16::Iss::new(&program);
        for &(a, v) in &bench.data.concrete {
            iss.write_mem(a, v as u16);
        }
        for (&a, &v) in bench.data.inputs.iter().zip(&bench.example_inputs) {
            iss.write_mem(a, v as u16);
        }
        assert!(iss.run(bench.max_cycles));
        let sim = gate_level_run(&cpu, &bench, &program);
        assert_eq!(cpu.read_data(&sim, 1).to_u64(), Some(iss.mem[1] as u64));
    }
    {
        let cpu = bm32::build();
        let bench = bm32::extended_benchmarks()[1].clone();
        let program = bm32::assemble(bench.source).expect("assembles");
        let mut iss = bm32::Iss::new(&program);
        for &(a, v) in &bench.data.concrete {
            iss.write_mem(a, v as u32);
        }
        for (&a, &v) in bench.data.inputs.iter().zip(&bench.example_inputs) {
            iss.write_mem(a, v as u32);
        }
        assert!(iss.run(bench.max_cycles));
        let sim = gate_level_run(&cpu, &bench, &program);
        assert_eq!(cpu.read_data(&sim, 1).to_u64(), Some(iss.mem[1] as u64));
    }
}

#[test]
fn crc16_coanalysis_is_sound_on_omsp16() {
    let cpu = omsp16::build();
    let bench = omsp16::extended_benchmarks()[0].clone();
    let program = omsp16::assemble(bench.source).expect("assembles");
    let config = CoAnalysisConfig {
        max_cycles_per_segment: bench.max_cycles,
        ..CoAnalysisConfig::default()
    };
    let report = CoAnalysis::new(&cpu.netlist, cpu.interface(), config)
        .expect("valid config")
        .run(|sim| cpu.prepare_symbolic(sim, &program, &bench.data));
    assert!(report.converged(), "{report}");
    assert!(report.paths_created > 1, "bit tests split: {report}");

    let mut sim = Simulator::new(&cpu.netlist, SimConfig::default());
    cpu.prepare_concrete(&mut sim, &program, &bench.data, &bench.example_inputs);
    sim.set_finish_net(cpu.finish);
    sim.arm_toggle_observer();
    sim.run(bench.max_cycles);
    let concrete = sim.take_toggle_profile().expect("armed");
    assert!(report.profile.covers_activity(&concrete));
}
