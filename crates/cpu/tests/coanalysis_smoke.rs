//! End-to-end smoke test: symbolic co-analysis of a real benchmark on the
//! gate-level omsp16, exercising the full Algorithm-1 stack.

use symsim_core::{CoAnalysis, CoAnalysisConfig};
use symsim_cpu::omsp16;
use symsim_sim::{SimConfig, Simulator};

#[test]
fn div_coanalysis_converges_and_is_sound() {
    let cpu = omsp16::build();
    let bench = omsp16::benchmark("div");
    let program = omsp16::assemble(bench.source).expect("assembles");

    let config = CoAnalysisConfig {
        max_cycles_per_segment: bench.max_cycles,
        ..CoAnalysisConfig::default()
    };
    let analysis = CoAnalysis::new(&cpu.netlist, cpu.interface(), config).expect("valid config");
    let report = analysis.run(|sim| cpu.prepare_symbolic(sim, &program, &bench.data));

    assert!(
        report.converged(),
        "no path may exhaust its budget: {report}"
    );
    assert!(report.paths_created > 1, "div must split: {report}");
    assert!(
        report.paths_skipped > 0,
        "conservative states must cover: {report}"
    );
    assert!(
        report.exercisable_gates < report.total_gates,
        "some gates must be unexercisable: {report}"
    );
    // the multiplier peripheral is untouched by div
    assert!(
        report.reduction_percent() > 20.0,
        "expected large reduction on omsp16: {report}"
    );

    // §5.0.1: concretely exercised gates are a subset of the exercisable set
    let mut sim = Simulator::new(&cpu.netlist, SimConfig::default());
    cpu.prepare_concrete(&mut sim, &program, &bench.data, &bench.example_inputs);
    sim.set_finish_net(cpu.finish);
    sim.arm_toggle_observer();
    sim.run(bench.max_cycles);
    let concrete = sim.take_toggle_profile().expect("armed");
    assert!(
        report.profile.covers_activity(&concrete),
        "concrete activity must be covered by the symbolic profile"
    );
}
