//! Gate evaluation over [`Value`]s under a [`PropagationPolicy`].
//!
//! Each function implements one standard-cell function with correct
//! four-state semantics (controlling values dominate unknowns: `0 AND x = 0`)
//! and, under [`PropagationPolicy::Tagged`], the symbol-recombination
//! simplifications of the paper's Fig. 4: `s AND !s = 0`, `s OR !s = 1`,
//! `s XOR s = 0`, `s XOR !s = 1`, and inverters flip a symbol's polarity
//! instead of degrading it to `X`.
//!
//! # Example
//!
//! ```
//! use symsim_logic::{ops, PropagationPolicy, Value};
//!
//! let p = PropagationPolicy::Tagged;
//! let s = Value::symbol(0);
//! assert_eq!(ops::and(s, ops::not(s, p), p), Value::ZERO);
//! assert_eq!(ops::mux(Value::ZERO, s, Value::ONE, p), s);
//! ```

use crate::{PropagationPolicy, Value};

/// Normalizes a gate input: drives `Z` to `X`, and under the anonymous
/// policy strips symbol identity.
#[inline]
fn input(v: Value, policy: PropagationPolicy) -> Value {
    match policy {
        PropagationPolicy::Anonymous => v.anonymize(),
        PropagationPolicy::Tagged => match v {
            Value::Logic(l) => Value::Logic(l.drive()),
            sym => sym,
        },
    }
}

/// Buffer: passes the (driven) input through.
#[inline]
pub fn buf(a: Value, policy: PropagationPolicy) -> Value {
    input(a, policy)
}

/// Inverter. Tagged symbols flip polarity; anonymous unknowns stay `X`.
#[inline]
pub fn not(a: Value, policy: PropagationPolicy) -> Value {
    match input(a, policy) {
        Value::Logic(l) => match l.to_bool() {
            Some(b) => Value::from_bool(!b),
            None => Value::X,
        },
        Value::Sym(s) => Value::Sym(s.complement()),
    }
}

/// Two-input AND with symbol recombination under the tagged policy.
#[inline]
pub fn and(a: Value, b: Value, policy: PropagationPolicy) -> Value {
    let (a, b) = (input(a, policy), input(b, policy));
    if a == Value::ZERO || b == Value::ZERO {
        return Value::ZERO;
    }
    if a == Value::ONE {
        return b;
    }
    if b == Value::ONE {
        return a;
    }
    match (a, b) {
        (Value::Sym(sa), Value::Sym(sb)) if sa.id == sb.id => {
            if sa.inverted == sb.inverted {
                a // s AND s = s
            } else {
                Value::ZERO // s AND !s = 0
            }
        }
        _ => Value::X,
    }
}

/// Two-input OR with symbol recombination under the tagged policy.
#[inline]
pub fn or(a: Value, b: Value, policy: PropagationPolicy) -> Value {
    let (a, b) = (input(a, policy), input(b, policy));
    if a == Value::ONE || b == Value::ONE {
        return Value::ONE;
    }
    if a == Value::ZERO {
        return b;
    }
    if b == Value::ZERO {
        return a;
    }
    match (a, b) {
        (Value::Sym(sa), Value::Sym(sb)) if sa.id == sb.id => {
            if sa.inverted == sb.inverted {
                a // s OR s = s
            } else {
                Value::ONE // s OR !s = 1
            }
        }
        _ => Value::X,
    }
}

/// Two-input XOR. `s XOR s = 0` and `s XOR !s = 1` under the tagged policy;
/// XOR of a symbol with a known value re-tags instead of degrading.
#[inline]
pub fn xor(a: Value, b: Value, policy: PropagationPolicy) -> Value {
    let (a, b) = (input(a, policy), input(b, policy));
    match (a, b) {
        (Value::Logic(la), Value::Logic(lb)) => match (la.to_bool(), lb.to_bool()) {
            (Some(ba), Some(bb)) => Value::from_bool(ba ^ bb),
            _ => Value::X,
        },
        (Value::Sym(sa), Value::Sym(sb)) if sa.id == sb.id => {
            Value::from_bool(sa.inverted != sb.inverted)
        }
        (Value::Sym(s), Value::Logic(l)) | (Value::Logic(l), Value::Sym(s)) => match l.to_bool() {
            Some(false) => Value::Sym(s),
            Some(true) => Value::Sym(s.complement()),
            None => Value::X,
        },
        _ => Value::X,
    }
}

/// Two-input NAND.
#[inline]
pub fn nand(a: Value, b: Value, policy: PropagationPolicy) -> Value {
    not(and(a, b, policy), policy)
}

/// Two-input NOR.
#[inline]
pub fn nor(a: Value, b: Value, policy: PropagationPolicy) -> Value {
    not(or(a, b, policy), policy)
}

/// Two-input XNOR.
#[inline]
pub fn xnor(a: Value, b: Value, policy: PropagationPolicy) -> Value {
    not(xor(a, b, policy), policy)
}

/// Two-to-one multiplexer: returns `a` when `sel = 0`, `b` when `sel = 1`.
///
/// When `sel` is unknown but both data inputs agree, the output is that
/// agreed value (the standard "X-pessimism reduction" a real simulator's
/// mux primitive performs); otherwise the output is unknown.
#[inline]
pub fn mux(sel: Value, a: Value, b: Value, policy: PropagationPolicy) -> Value {
    let (sel, a, b) = (input(sel, policy), input(a, policy), input(b, policy));
    match sel.to_bool() {
        Some(false) => a,
        Some(true) => b,
        None => {
            if a == b && !a.is_x() {
                a
            } else {
                Value::X
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Logic;

    const ALL: [Value; 4] = [Value::ZERO, Value::ONE, Value::X, Value::Z];

    fn concretize(v: Value, bit: bool) -> Value {
        match v {
            Value::Logic(Logic::X) | Value::Logic(Logic::Z) => Value::from_bool(bit),
            Value::Sym(s) => Value::from_bool(bit ^ s.inverted),
            known => known,
        }
    }

    /// Soundness: for every gate and every input combination, every
    /// concretization of the inputs must be covered by the symbolic output.
    #[test]
    fn gates_are_sound_over_concretizations() {
        for policy in [PropagationPolicy::Anonymous, PropagationPolicy::Tagged] {
            let syms = [
                Value::symbol(0),
                Value::symbol_inverted(0),
                Value::symbol(1),
            ];
            let domain: Vec<Value> = ALL.iter().copied().chain(syms).collect();
            for &a in &domain {
                for &b in &domain {
                    for bits in 0u8..4 {
                        // bit i concretizes symbol id i; anonymous X uses bit 0 and
                        // bit 1 independently per operand via helper below.
                        let sa = match a {
                            Value::Sym(s) => bits >> s.id.0 & 1 == 1,
                            _ => bits & 1 == 1,
                        };
                        let sb = match b {
                            Value::Sym(s) => bits >> s.id.0 & 1 == 1,
                            _ => bits >> 1 & 1 == 1,
                        };
                        // For anonymous X operands the two choices are
                        // independent; for shared symbols they are linked.
                        let ca = concretize(a, sa);
                        let cb = concretize(b, sb);
                        let check = |sym_out: Value, conc_out: Value, name: &str| {
                            let covered = match sym_out {
                                Value::Logic(Logic::X) => true,
                                Value::Sym(s) => {
                                    // symbol output concretizes consistently
                                    let v = (bits >> s.id.0 & 1 == 1) ^ s.inverted;
                                    Value::from_bool(v) == conc_out
                                }
                                known => known == conc_out,
                            };
                            assert!(
                                covered,
                                "{name}({a},{b}) = {sym_out} does not cover concrete \
                                 {name}({ca},{cb}) = {conc_out} [{policy:?}]"
                            );
                        };
                        let cb2 = |f: fn(Value, Value, PropagationPolicy) -> Value| {
                            (f(a, b, policy), f(ca, cb, policy))
                        };
                        let (s, c) = cb2(and);
                        check(s, c, "and");
                        let (s, c) = cb2(or);
                        check(s, c, "or");
                        let (s, c) = cb2(xor);
                        check(s, c, "xor");
                        let (s, c) = cb2(nand);
                        check(s, c, "nand");
                        let (s, c) = cb2(nor);
                        check(s, c, "nor");
                        let (s, c) = cb2(xnor);
                        check(s, c, "xnor");
                    }
                }
            }
        }
    }

    #[test]
    fn controlling_values_dominate() {
        for p in [PropagationPolicy::Anonymous, PropagationPolicy::Tagged] {
            assert_eq!(and(Value::ZERO, Value::X, p), Value::ZERO);
            assert_eq!(and(Value::X, Value::ZERO, p), Value::ZERO);
            assert_eq!(or(Value::ONE, Value::X, p), Value::ONE);
            assert_eq!(nand(Value::ZERO, Value::X, p), Value::ONE);
            assert_eq!(nor(Value::ONE, Value::X, p), Value::ZERO);
        }
    }

    #[test]
    fn tagged_recombination() {
        let p = PropagationPolicy::Tagged;
        let s = Value::symbol(3);
        let ns = not(s, p);
        assert_eq!(xor(s, s, p), Value::ZERO);
        assert_eq!(xor(s, ns, p), Value::ONE);
        assert_eq!(and(s, ns, p), Value::ZERO);
        assert_eq!(or(s, ns, p), Value::ONE);
        assert_eq!(and(s, s, p), s);
        assert_eq!(or(s, s, p), s);
        assert_eq!(xnor(s, s, p), Value::ONE);
        // distinct symbols do not recombine
        assert_eq!(xor(s, Value::symbol(4), p), Value::X);
    }

    #[test]
    fn anonymous_policy_degrades_symbols() {
        let p = PropagationPolicy::Anonymous;
        let s = Value::symbol(3);
        assert_eq!(xor(s, s, p), Value::X);
        assert_eq!(not(s, p), Value::X);
        assert_eq!(buf(s, p), Value::X);
    }

    #[test]
    fn xor_retags_against_constants() {
        let p = PropagationPolicy::Tagged;
        let s = Value::symbol(1);
        assert_eq!(xor(s, Value::ZERO, p), s);
        assert_eq!(xor(s, Value::ONE, p), Value::symbol_inverted(1));
        assert_eq!(xnor(s, Value::ONE, p), s);
    }

    #[test]
    fn mux_behaviour() {
        for p in [PropagationPolicy::Anonymous, PropagationPolicy::Tagged] {
            assert_eq!(mux(Value::ZERO, Value::ONE, Value::ZERO, p), Value::ONE);
            assert_eq!(mux(Value::ONE, Value::ONE, Value::ZERO, p), Value::ZERO);
            assert_eq!(mux(Value::X, Value::ONE, Value::ONE, p), Value::ONE);
            assert_eq!(mux(Value::X, Value::ONE, Value::ZERO, p), Value::X);
        }
        // tagged: agreeing symbol passes through an unknown select
        let s = Value::symbol(2);
        assert_eq!(mux(Value::X, s, s, PropagationPolicy::Tagged), s);
    }

    #[test]
    fn z_treated_as_unknown_input() {
        for p in [PropagationPolicy::Anonymous, PropagationPolicy::Tagged] {
            assert_eq!(and(Value::Z, Value::ONE, p), Value::X);
            assert_eq!(buf(Value::Z, p), Value::X);
            assert_eq!(not(Value::Z, p), Value::X);
        }
    }
}
