//! # symsim-logic
//!
//! Four-state logic scalars and tagged symbolic values for symbolic
//! gate-level simulation, as used by the DAC'22 design-agnostic symbolic
//! hardware-software co-analysis tool.
//!
//! The crate provides:
//!
//! * [`Logic`] — the classic four-state scalar `{0, 1, X, Z}`.
//! * [`Value`] — either a [`Logic`] scalar or a tagged symbol
//!   ([`Sym`]), enabling the *identified symbol* propagation mode of the
//!   paper's Fig. 4 (left), where `s XOR s = 0` can be simplified.
//! * [`PropagationPolicy`] — selects between anonymous-`X` propagation
//!   (Fig. 4 right) and tagged-symbol propagation (Fig. 4 left).
//! * Gate evaluation ([`ops`]) for the standard cell set under either policy.
//! * The conservative-state lattice operations [`Value::merge`] and
//!   [`Value::covers`] used by the Conservative State Manager.
//! * [`Word`] — a little-endian bus of [`Value`]s with arithmetic and
//!   merge/covers lifted bitwise.
//!
//! # Example
//!
//! ```
//! use symsim_logic::{Logic, Value, PropagationPolicy, ops};
//!
//! let policy = PropagationPolicy::Tagged;
//! let s = Value::symbol(7);
//! // A tagged symbol XORed with itself is known to be 0 (Fig. 4 left).
//! assert_eq!(ops::xor(s, s, policy), Value::ZERO);
//! // Under the anonymous policy the same gate yields X (Fig. 4 right).
//! assert_eq!(ops::xor(s, s, PropagationPolicy::Anonymous), Value::X);
//! assert_eq!(ops::and(Value::ZERO, Value::X, policy), Value::ZERO);
//! # assert_eq!(ops::not(s, policy), Value::symbol_inverted(7));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod scalar;
mod value;
mod word;

pub mod ops;
pub mod plane;

pub use scalar::Logic;
pub use value::{PropagationPolicy, Sym, SymId, Value};
pub use word::Word;
