use std::fmt;

use serde::{Deserialize, Serialize};

/// A four-state logic scalar: `0`, `1`, unknown (`X`), or high-impedance (`Z`).
///
/// `X` is the *unknown* symbol of the paper's symbolic simulation: an input
/// replaced by `X` stands for both `0` and `1`, and `X` propagating to a gate
/// marks that gate as exercisable. `Z` models undriven nets; any gate that
/// reads a `Z` input treats it as unknown.
///
/// # Example
///
/// ```
/// use symsim_logic::Logic;
///
/// assert_eq!(Logic::from_bool(true), Logic::One);
/// assert_eq!(Logic::Zero.to_bool(), Some(false));
/// assert_eq!(Logic::X.to_bool(), None);
/// assert_eq!(Logic::X.to_string(), "x");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Logic {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Unknown value — the symbolic `X` of the co-analysis.
    X,
    /// High impedance (undriven).
    Z,
}

impl Logic {
    /// Converts a boolean into a known logic level.
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// Returns `Some(bool)` for `0`/`1`, `None` for `X`/`Z`.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            Logic::X | Logic::Z => None,
        }
    }

    /// True if the scalar is a known `0` or `1`.
    #[inline]
    pub fn is_known(self) -> bool {
        matches!(self, Logic::Zero | Logic::One)
    }

    /// Treats high-impedance as unknown, as a gate input would.
    #[inline]
    pub fn drive(self) -> Logic {
        match self {
            Logic::Z => Logic::X,
            other => other,
        }
    }

    /// A compact stable encoding used by the state serializer.
    #[inline]
    pub fn to_code(self) -> u8 {
        match self {
            Logic::Zero => 0,
            Logic::One => 1,
            Logic::X => 2,
            Logic::Z => 3,
        }
    }

    /// Inverse of [`Logic::to_code`]. Returns `None` for codes above 3.
    #[inline]
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => Logic::Zero,
            1 => Logic::One,
            2 => Logic::X,
            3 => Logic::Z,
            _ => return None,
        })
    }
}

impl Default for Logic {
    /// Nets power up unknown, matching the simulator's reset-free state.
    fn default() -> Self {
        Logic::X
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Self {
        Logic::from_bool(b)
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::X => 'x',
            Logic::Z => 'z',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_round_trip() {
        assert_eq!(Logic::from_bool(true).to_bool(), Some(true));
        assert_eq!(Logic::from_bool(false).to_bool(), Some(false));
    }

    #[test]
    fn unknowns_have_no_bool() {
        assert_eq!(Logic::X.to_bool(), None);
        assert_eq!(Logic::Z.to_bool(), None);
    }

    #[test]
    fn code_round_trip() {
        for l in [Logic::Zero, Logic::One, Logic::X, Logic::Z] {
            assert_eq!(Logic::from_code(l.to_code()), Some(l));
        }
        assert_eq!(Logic::from_code(7), None);
    }

    #[test]
    fn drive_degrades_z_only() {
        assert_eq!(Logic::Z.drive(), Logic::X);
        assert_eq!(Logic::Zero.drive(), Logic::Zero);
        assert_eq!(Logic::One.drive(), Logic::One);
        assert_eq!(Logic::X.drive(), Logic::X);
    }

    #[test]
    fn default_is_unknown() {
        assert_eq!(Logic::default(), Logic::X);
    }

    #[test]
    fn display() {
        assert_eq!(
            [Logic::Zero, Logic::One, Logic::X, Logic::Z]
                .map(|l| l.to_string())
                .join(""),
            "01xz"
        );
    }
}
