use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

use crate::Value;

/// A little-endian bus of [`Value`]s: bit 0 is the least-significant bit.
///
/// `Word` is the unit the Conservative State Manager merges and compares,
/// the unit memories store, and the unit testbenches drive onto input buses.
///
/// # Example
///
/// ```
/// use symsim_logic::{Value, Word};
///
/// let w = Word::from_u64(0b1010, 4);
/// assert_eq!(w.to_u64(), Some(0b1010));
/// assert_eq!(w.bit(1), Value::ONE);
///
/// let xs = Word::xs(4);
/// assert_eq!(xs.to_u64(), None);
/// assert!(w.merge(&xs).is_all_x());
/// assert!(xs.covers(&w));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Word(Vec<Value>);

impl Word {
    /// An all-`X` word of the given width.
    pub fn xs(width: usize) -> Word {
        Word(vec![Value::X; width])
    }

    /// An all-zero word of the given width.
    pub fn zeros(width: usize) -> Word {
        Word(vec![Value::ZERO; width])
    }

    /// The low `width` bits of `v` as known values.
    pub fn from_u64(v: u64, width: usize) -> Word {
        Word(
            (0..width)
                .map(|i| Value::from_bool(v >> i & 1 == 1))
                .collect(),
        )
    }

    /// Builds a word from individual bit values (LSB first).
    pub fn from_bits(bits: Vec<Value>) -> Word {
        Word(bits)
    }

    /// A word of fresh tagged symbols `first_id .. first_id + width`.
    pub fn symbols(first_id: u32, width: usize) -> Word {
        Word(
            (0..width)
                .map(|i| Value::symbol(first_id + i as u32))
                .collect(),
        )
    }

    /// Bus width in bits.
    pub fn width(&self) -> usize {
        self.0.len()
    }

    /// True when the word has zero width.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The value of bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn bit(&self, i: usize) -> Value {
        self.0[i]
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn set_bit(&mut self, i: usize, v: Value) {
        self.0[i] = v;
    }

    /// Interprets the word as an unsigned integer if every bit is known.
    ///
    /// Returns `None` if any bit is `X`, `Z`, or a symbol, or if the width
    /// exceeds 64 bits.
    pub fn to_u64(&self) -> Option<u64> {
        if self.width() > 64 {
            return None;
        }
        let mut out = 0u64;
        for (i, v) in self.0.iter().enumerate() {
            match v.to_bool() {
                Some(true) => out |= 1 << i,
                Some(false) => {}
                None => return None,
            }
        }
        Some(out)
    }

    /// True if every bit is a known `0`/`1`.
    pub fn is_known(&self) -> bool {
        self.0.iter().all(|v| v.is_known())
    }

    /// True if any bit is unknown (`X`, `Z`, or a symbol).
    pub fn has_unknown(&self) -> bool {
        !self.is_known()
    }

    /// True if every bit is the anonymous `X`.
    pub fn is_all_x(&self) -> bool {
        self.0.iter().all(|v| v.is_x())
    }

    /// Number of bits that are not known `0`/`1`.
    pub fn unknown_count(&self) -> usize {
        self.0.iter().filter(|v| v.is_unknown()).count()
    }

    /// Bitwise conservative merge (see [`Value::merge`]).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn merge(&self, other: &Word) -> Word {
        assert_eq!(
            self.width(),
            other.width(),
            "merging words of unequal width"
        );
        Word(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| a.merge(*b))
                .collect(),
        )
    }

    /// Bitwise covering check (see [`Value::covers`]).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn covers(&self, other: &Word) -> bool {
        assert_eq!(
            self.width(),
            other.width(),
            "covering words of unequal width"
        );
        self.0.iter().zip(&other.0).all(|(a, b)| a.covers(*b))
    }

    /// Iterates over bits, LSB first.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.0.iter()
    }

    /// The bits as a slice, LSB first.
    pub fn as_slice(&self) -> &[Value] {
        &self.0
    }

    /// Consumes the word, returning its bits.
    pub fn into_bits(self) -> Vec<Value> {
        self.0
    }
}

impl Index<usize> for Word {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl IndexMut<usize> for Word {
    fn index_mut(&mut self, i: usize) -> &mut Value {
        &mut self.0[i]
    }
}

impl FromIterator<Value> for Word {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Word(iter.into_iter().collect())
    }
}

impl Extend<Value> for Word {
    fn extend<I: IntoIterator<Item = Value>>(&mut self, iter: I) {
        self.0.extend(iter)
    }
}

impl<'a> IntoIterator for &'a Word {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl IntoIterator for Word {
    type Item = Value;
    type IntoIter = std::vec::IntoIter<Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl fmt::Display for Word {
    /// MSB-first rendering, matching how waveforms print buses: `4'b10x0`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'b", self.width())?;
        for v in self.0.iter().rev() {
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trip() {
        for v in [0u64, 1, 0xdead, u16::MAX as u64] {
            assert_eq!(Word::from_u64(v, 16).to_u64(), Some(v & 0xffff));
        }
    }

    #[test]
    fn unknown_bits_poison_to_u64() {
        let mut w = Word::from_u64(5, 8);
        w.set_bit(3, Value::X);
        assert_eq!(w.to_u64(), None);
        assert_eq!(w.unknown_count(), 1);
        assert!(w.has_unknown());
    }

    #[test]
    fn merge_and_covers() {
        let a = Word::from_u64(0b1100, 4);
        let b = Word::from_u64(0b1010, 4);
        let m = a.merge(&b);
        assert!(m.covers(&a) && m.covers(&b));
        assert_eq!(m.bit(3), Value::ONE); // agreeing bit stays known
        assert_eq!(m.bit(0), Value::ZERO);
        assert!(m.bit(1).is_x() && m.bit(2).is_x());
        assert!(!a.covers(&b));
    }

    #[test]
    fn symbols_word() {
        let w = Word::symbols(10, 3);
        assert_eq!(w.bit(2), Value::symbol(12));
        assert!(w.has_unknown());
        assert!(!w.is_all_x());
    }

    #[test]
    fn display_msb_first() {
        let mut w = Word::from_u64(0b01, 3);
        w.set_bit(2, Value::X);
        assert_eq!(w.to_string(), "3'bx01");
    }

    #[test]
    #[should_panic(expected = "unequal width")]
    fn merge_width_mismatch_panics() {
        let _ = Word::xs(3).merge(&Word::xs(4));
    }
}
