use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Logic;

/// Identifier of a distinct unknown input bit under tagged propagation.
///
/// Two occurrences of the same `SymId` are guaranteed to carry the *same*
/// (unknown) value, which is what allows simplifications such as
/// `s XOR s = 0` (paper Fig. 4, left).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct SymId(pub u32);

impl fmt::Display for SymId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A tagged symbol: an unknown value with identity, possibly inverted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Sym {
    /// Which unknown input this symbol stands for.
    pub id: SymId,
    /// Whether this occurrence is the complement of the input.
    pub inverted: bool,
}

impl Sym {
    /// The complementary occurrence of the same symbol.
    #[inline]
    pub fn complement(self) -> Sym {
        Sym {
            id: self.id,
            inverted: !self.inverted,
        }
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.inverted {
            write!(f, "!{}", self.id)
        } else {
            write!(f, "{}", self.id)
        }
    }
}

/// Selects how unknown values propagate through gates (paper Fig. 4).
///
/// * [`PropagationPolicy::Anonymous`] — symbols carry no identity; every
///   unknown behaves as plain `X`. Most scalable, most conservative.
/// * [`PropagationPolicy::Tagged`] — each unknown input keeps its identity so
///   recombination can simplify (e.g. the XOR of a symbol with itself is a
///   known `0`). Less conservative, slightly costlier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default, PartialOrd, Ord,
)]
pub enum PropagationPolicy {
    /// Unknowns are indistinguishable `X`s (Fig. 4 right).
    #[default]
    Anonymous,
    /// Unknowns carry identity and simplify on recombination (Fig. 4 left).
    Tagged,
}

/// A simulation value: a four-state scalar or a tagged symbol.
///
/// This is the value type carried by every net in the simulator. Under the
/// anonymous policy only the [`Logic`] variants occur after the first gate;
/// under the tagged policy symbols survive inverters and recombine at
/// two-input gates.
///
/// # Example
///
/// ```
/// use symsim_logic::{Logic, Value};
///
/// let v = Value::from_bool(true);
/// assert!(v.is_known());
/// assert!(Value::X.is_unknown());
/// assert!(Value::symbol(3).is_unknown());
/// assert_eq!(Value::symbol(3).to_string(), "s3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// A plain four-state scalar.
    Logic(Logic),
    /// A tagged unknown.
    Sym(Sym),
}

impl Value {
    /// Constant logic `0`.
    pub const ZERO: Value = Value::Logic(Logic::Zero);
    /// Constant logic `1`.
    pub const ONE: Value = Value::Logic(Logic::One);
    /// Anonymous unknown.
    pub const X: Value = Value::Logic(Logic::X);
    /// High impedance.
    pub const Z: Value = Value::Logic(Logic::Z);

    /// A fresh (non-inverted) occurrence of symbol `id`.
    #[inline]
    pub fn symbol(id: u32) -> Value {
        Value::Sym(Sym {
            id: SymId(id),
            inverted: false,
        })
    }

    /// An inverted occurrence of symbol `id`.
    #[inline]
    pub fn symbol_inverted(id: u32) -> Value {
        Value::Sym(Sym {
            id: SymId(id),
            inverted: true,
        })
    }

    /// Converts a boolean into a known value.
    #[inline]
    pub fn from_bool(b: bool) -> Value {
        Value::Logic(Logic::from_bool(b))
    }

    /// Returns `Some(bool)` for known `0`/`1` values.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Value::Logic(l) => l.to_bool(),
            Value::Sym(_) => None,
        }
    }

    /// True for known `0`/`1` values.
    #[inline]
    pub fn is_known(self) -> bool {
        matches!(self, Value::Logic(Logic::Zero) | Value::Logic(Logic::One))
    }

    /// True for `X`, `Z`, or any tagged symbol — anything that stands for
    /// more than one concrete value.
    #[inline]
    pub fn is_unknown(self) -> bool {
        !self.is_known()
    }

    /// True if this value is exactly the anonymous `X`.
    #[inline]
    pub fn is_x(self) -> bool {
        matches!(self, Value::Logic(Logic::X))
    }

    /// Degrades tagged symbols to anonymous `X` and `Z` to `X`: the view of
    /// this value as a driven gate input under the anonymous policy.
    #[inline]
    pub fn anonymize(self) -> Value {
        match self {
            Value::Logic(l) => Value::Logic(l.drive()),
            Value::Sym(_) => Value::X,
        }
    }

    /// The conservative join of two values: identical values are preserved,
    /// anything else becomes `X`.
    ///
    /// This is the bitwise merge the Conservative State Manager uses to form
    /// superstates ("replace all differing bits with Xs"). It is commutative,
    /// associative, and idempotent, with `X` as the absorbing top element.
    #[inline]
    pub fn merge(self, other: Value) -> Value {
        if self == other {
            self
        } else {
            Value::X
        }
    }

    /// Does `self` (the more conservative value) cover `other`?
    ///
    /// `X` covers everything; any other value covers only itself. A state is
    /// a subset of a previously-simulated conservative state iff every bit is
    /// covered, in which case further simulation of the path is skipped.
    #[inline]
    pub fn covers(self, other: Value) -> bool {
        self == Value::X || self == other
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::X
    }
}

impl From<Logic> for Value {
    fn from(l: Logic) -> Self {
        Value::Logic(l)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::from_bool(b)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Logic(l) => write!(f, "{l}"),
            Value::Sym(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_join() {
        assert_eq!(Value::ZERO.merge(Value::ZERO), Value::ZERO);
        assert_eq!(Value::ZERO.merge(Value::ONE), Value::X);
        assert_eq!(Value::X.merge(Value::ONE), Value::X);
        let s = Value::symbol(2);
        assert_eq!(s.merge(s), s);
        assert_eq!(s.merge(Value::symbol(3)), Value::X);
        assert_eq!(s.merge(s.anonymize()), Value::X);
    }

    #[test]
    fn covers_partial_order() {
        assert!(Value::X.covers(Value::ZERO));
        assert!(Value::X.covers(Value::symbol(1)));
        assert!(Value::ONE.covers(Value::ONE));
        assert!(!Value::ONE.covers(Value::ZERO));
        assert!(!Value::ZERO.covers(Value::X));
        // merge produces a cover of both arguments
        for a in [Value::ZERO, Value::ONE, Value::X, Value::symbol(4)] {
            for b in [Value::ZERO, Value::ONE, Value::Z, Value::symbol(4)] {
                let m = a.merge(b);
                assert!(m.covers(a) && m.covers(b), "{a} merge {b} = {m}");
            }
        }
    }

    #[test]
    fn anonymize() {
        assert_eq!(Value::symbol(9).anonymize(), Value::X);
        assert_eq!(Value::Z.anonymize(), Value::X);
        assert_eq!(Value::ONE.anonymize(), Value::ONE);
    }

    #[test]
    fn complement_involution() {
        let s = Sym {
            id: SymId(5),
            inverted: false,
        };
        assert_eq!(s.complement().complement(), s);
        assert_ne!(s.complement(), s);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::symbol_inverted(5).to_string(), "!s5");
        assert_eq!(Value::Z.to_string(), "z");
    }
}
