//! Bit-packed two-plane gate algebra: 64 nets evaluated per word-op.
//!
//! A [`Lanes`] pair packs 64 four-state values into two `u64` bitplanes —
//! `val` (the known bit) and `unk` (1 where the lane is not a known `0`/`1`).
//! `Z` and tagged symbols fold into `unk`, exactly the normalization
//! [`ops`](crate::ops) applies to every gate *input* (`Z` is driven to `X`;
//! a batched evaluator keeps symbol identity by falling back to scalar
//! evaluation for lanes carrying symbols, so the planes never need to
//! represent them).
//!
//! Every gate function here is branch-free plane arithmetic and agrees with
//! the scalar [`ops`](crate::ops) functions lane-for-lane on all
//! [`Logic`](crate::Logic)-valued inputs under **both** propagation policies
//! (the policies only differ on tagged symbols, which are excluded by
//! construction). This is checked exhaustively by the differential property
//! tests in `tests/plane_props.rs`.
//!
//! # Invariant
//!
//! All functions expect and preserve the normalization `val & unk == 0`
//! (an unknown lane carries a zero `val` bit). [`pack`] produces normalized
//! planes.
//!
//! # Example
//!
//! ```
//! use symsim_logic::plane::{self, Lanes};
//!
//! let a = Lanes { val: 0b10, unk: 0b01 }; // lane0 = X, lane1 = 1
//! let b = Lanes { val: 0b00, unk: 0b00 }; // lane0 = 0, lane1 = 0
//! let y = plane::and2(a, b);
//! assert_eq!((y.val, y.unk), (0, 0)); // known 0 dominates X: both lanes 0
//! ```

use crate::{Logic, Value};

/// 64 four-state lanes packed as two bitplanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Lanes {
    /// Known-value bits; only meaningful where the `unk` bit is clear.
    pub val: u64,
    /// Unknown mask: 1 where the lane is `X` (or folded `Z`/symbol).
    pub unk: u64,
}

impl Lanes {
    /// All lanes known `0`.
    pub const ZEROS: Lanes = Lanes { val: 0, unk: 0 };
    /// All lanes known `1`.
    pub const ONES: Lanes = Lanes { val: !0, unk: 0 };

    /// The value of lane `i`, decoding unknowns as anonymous `X`.
    #[inline]
    pub fn get(self, i: u32) -> Value {
        if self.unk >> i & 1 == 1 {
            Value::X
        } else {
            Value::from_bool(self.val >> i & 1 == 1)
        }
    }

    /// Sets lane `i` (normalizing: unknown lanes carry a zero `val` bit).
    #[inline]
    pub fn set(&mut self, i: u32, v: Value) {
        let (vb, ub) = encode(v);
        self.val = self.val & !(1 << i) | u64::from(vb) << i;
        self.unk = self.unk & !(1 << i) | u64::from(ub) << i;
    }

    /// Every lane broadcast to the same value (`Z`/symbols fold to unknown).
    #[inline]
    pub fn broadcast(v: Value) -> Lanes {
        let (vb, ub) = encode(v);
        Lanes {
            val: if vb { !0 } else { 0 },
            unk: if ub { !0 } else { 0 },
        }
    }

    /// Lane-wise select: lanes where `mask` is set come from `a`, the rest
    /// from `b`. Both planes are selected together, so normalization is
    /// preserved.
    #[inline]
    pub fn select(mask: u64, a: Lanes, b: Lanes) -> Lanes {
        Lanes {
            val: (a.val & mask) | (b.val & !mask),
            unk: (a.unk & mask) | (b.unk & !mask),
        }
    }

    /// Masked writeback: lanes where `mask` is set take `new`'s bits, all
    /// other lanes keep `self`'s bits exactly. This is the cohort engine's
    /// lane-mask invariant: a masked-out (dead) lane can never be disturbed
    /// by a live lane's update.
    #[inline]
    #[must_use]
    pub fn merge_masked(self, new: Lanes, mask: u64) -> Lanes {
        Lanes::select(mask, new, self)
    }

    /// Lanes whose value differs between `self` and `other` (either plane).
    #[inline]
    pub fn diff_mask(self, other: Lanes) -> u64 {
        (self.val ^ other.val) | (self.unk ^ other.unk)
    }

    /// Lanes carrying an unknown (`X`, or folded `Z`/symbol).
    #[inline]
    pub fn unknown_mask(self) -> u64 {
        self.unk
    }

    /// Lanes carrying a known `1`.
    #[inline]
    pub fn known_ones(self) -> u64 {
        self.val & !self.unk
    }

    /// Lanes carrying a known `0`.
    #[inline]
    pub fn known_zeros(self) -> u64 {
        !self.val & !self.unk
    }
}

/// Encodes one value as `(val, unk)` bits, folding `Z` and symbols into
/// the unknown plane.
#[inline]
pub fn encode(v: Value) -> (bool, bool) {
    match v {
        Value::Logic(Logic::Zero) => (false, false),
        Value::Logic(Logic::One) => (true, false),
        _ => (false, true),
    }
}

/// Packs up to 64 values into normalized planes (lane `i` = `values[i]`).
///
/// # Panics
///
/// Panics if more than 64 values are given.
pub fn pack(values: &[Value]) -> Lanes {
    assert!(values.len() <= 64, "at most 64 lanes per word");
    let mut lanes = Lanes::ZEROS;
    for (i, &v) in values.iter().enumerate() {
        lanes.set(i as u32, v);
    }
    lanes
}

/// Buffer: passes the folded input through.
#[inline]
pub fn buf(a: Lanes) -> Lanes {
    a
}

/// Inverter: known lanes flip, unknown lanes stay unknown.
#[inline]
pub fn not(a: Lanes) -> Lanes {
    Lanes {
        val: !a.val & !a.unk,
        unk: a.unk,
    }
}

/// Two-input AND: a known `0` on either side dominates any unknown.
#[inline]
pub fn and2(a: Lanes, b: Lanes) -> Lanes {
    Lanes {
        val: a.val & b.val,
        // unknown unless one side is a known 0 (val and unk both clear)
        unk: (a.unk | b.unk) & (a.val | a.unk) & (b.val | b.unk),
    }
}

/// Two-input OR: a known `1` on either side dominates any unknown.
#[inline]
pub fn or2(a: Lanes, b: Lanes) -> Lanes {
    Lanes {
        val: a.val | b.val,
        unk: (a.unk | b.unk) & !(a.val | b.val),
    }
}

/// Two-input NAND.
#[inline]
pub fn nand2(a: Lanes, b: Lanes) -> Lanes {
    not(and2(a, b))
}

/// Two-input NOR.
#[inline]
pub fn nor2(a: Lanes, b: Lanes) -> Lanes {
    not(or2(a, b))
}

/// Two-input XOR: any unknown input makes the lane unknown.
#[inline]
pub fn xor2(a: Lanes, b: Lanes) -> Lanes {
    let unk = a.unk | b.unk;
    Lanes {
        val: (a.val ^ b.val) & !unk,
        unk,
    }
}

/// Two-input XNOR.
#[inline]
pub fn xnor2(a: Lanes, b: Lanes) -> Lanes {
    not(xor2(a, b))
}

/// 2:1 mux (`sel = 0` selects `a`): an unknown select still yields the
/// agreed value when both data lanes are known and equal (the standard
/// X-pessimism reduction of [`ops::mux`](crate::ops::mux)).
#[inline]
pub fn mux2(sel: Lanes, a: Lanes, b: Lanes) -> Lanes {
    let known_sel = !sel.unk;
    let agree = !a.unk & !b.unk & !(a.val ^ b.val);
    let pick_a = known_sel & !sel.val;
    let pick_b = known_sel & sel.val;
    Lanes {
        val: (pick_a & a.val) | (pick_b & b.val) | (sel.unk & agree & a.val),
        unk: (pick_a & a.unk) | (pick_b & b.unk) | (sel.unk & !agree),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOMAIN: [Value; 4] = [Value::ZERO, Value::ONE, Value::X, Value::Z];

    fn normalized(l: Lanes) -> bool {
        l.val & l.unk == 0
    }

    #[test]
    fn pack_and_get_round_trip() {
        let vals = [Value::ZERO, Value::ONE, Value::X, Value::Z];
        let lanes = pack(&vals);
        assert!(normalized(lanes));
        assert_eq!(lanes.get(0), Value::ZERO);
        assert_eq!(lanes.get(1), Value::ONE);
        assert_eq!(lanes.get(2), Value::X);
        assert_eq!(lanes.get(3), Value::X); // Z folds to unknown
        assert_eq!(lanes.get(63), Value::ZERO); // unset lanes read as 0
    }

    #[test]
    fn gates_preserve_normalization() {
        for &a in &DOMAIN {
            for &b in &DOMAIN {
                for &s in &DOMAIN {
                    let (la, lb, ls) = (pack(&[a]), pack(&[b]), pack(&[s]));
                    for out in [
                        buf(la),
                        not(la),
                        and2(la, lb),
                        or2(la, lb),
                        nand2(la, lb),
                        nor2(la, lb),
                        xor2(la, lb),
                        xnor2(la, lb),
                        mux2(ls, la, lb),
                    ] {
                        assert!(normalized(out), "{a} {b} {s}");
                    }
                }
            }
        }
    }

    #[test]
    fn controlling_values_dominate() {
        let zero = pack(&[Value::ZERO]);
        let one = pack(&[Value::ONE]);
        let x = pack(&[Value::X]);
        assert_eq!(and2(zero, x).get(0), Value::ZERO);
        assert_eq!(and2(x, zero).get(0), Value::ZERO);
        assert_eq!(or2(one, x).get(0), Value::ONE);
        assert_eq!(nand2(zero, x).get(0), Value::ONE);
        assert_eq!(nor2(one, x).get(0), Value::ZERO);
        assert_eq!(xor2(one, x).get(0), Value::X);
    }

    #[test]
    fn mux_x_pessimism_reduction() {
        let x = pack(&[Value::X]);
        let one = pack(&[Value::ONE]);
        let zero = pack(&[Value::ZERO]);
        assert_eq!(mux2(x, one, one).get(0), Value::ONE);
        assert_eq!(mux2(x, zero, zero).get(0), Value::ZERO);
        assert_eq!(mux2(x, one, zero).get(0), Value::X);
        assert_eq!(mux2(x, x, x).get(0), Value::X);
        assert_eq!(mux2(zero, one, zero).get(0), Value::ONE);
        assert_eq!(mux2(one, one, zero).get(0), Value::ZERO);
    }

    #[test]
    fn whole_word_constants() {
        assert_eq!(Lanes::ONES.get(17), Value::ONE);
        assert_eq!(Lanes::ZEROS.get(17), Value::ZERO);
        assert_eq!(not(Lanes::ONES), Lanes::ZEROS);
    }

    #[test]
    fn broadcast_fills_all_lanes() {
        for &v in &DOMAIN {
            let l = Lanes::broadcast(v);
            assert!(normalized(l));
            let folded = if v == Value::Z { Value::X } else { v };
            assert_eq!(l.get(0), folded);
            assert_eq!(l.get(63), folded);
        }
    }

    #[test]
    fn merge_masked_keeps_dead_lanes() {
        let old = pack(&[Value::ZERO, Value::ONE, Value::X, Value::ONE]);
        let new = pack(&[Value::ONE, Value::X, Value::ZERO, Value::ZERO]);
        let merged = old.merge_masked(new, 0b0101);
        assert_eq!(merged.get(0), Value::ONE, "live lane takes the new value");
        assert_eq!(merged.get(1), Value::ONE, "dead lane keeps the old value");
        assert_eq!(merged.get(2), Value::ZERO);
        assert_eq!(merged.get(3), Value::ONE);
        assert!(normalized(merged));
    }

    #[test]
    fn reduction_masks_partition_lanes() {
        let l = pack(&[Value::ZERO, Value::ONE, Value::X, Value::Z]);
        assert_eq!(l.unknown_mask() & 0xf, 0b1100);
        assert_eq!(l.known_ones() & 0xf, 0b0010);
        assert_eq!(l.known_zeros() & 0xf, 0b0001);
        // the three masks partition the lane space
        assert_eq!(l.unknown_mask() ^ l.known_ones() ^ l.known_zeros(), !0);
    }

    #[test]
    fn diff_mask_finds_changed_lanes() {
        let a = pack(&[Value::ZERO, Value::ONE, Value::X]);
        let b = pack(&[Value::ONE, Value::ONE, Value::ZERO]);
        assert_eq!(a.diff_mask(b) & 0b111, 0b101);
        assert_eq!(a.diff_mask(a), 0);
    }
}
