//! Differential property tests for the bit-packed plane algebra: for random
//! gate kinds, input planes (including `Z` lanes, which gates fold to `X`),
//! and both propagation policies, every plane function must agree with the
//! scalar [`ops`] functions on all 64 lanes.
//!
//! Symbols are deliberately absent: the planes cannot represent them, and
//! the batched kernel routes symbol-carrying lanes to scalar evaluation
//! (see `symsim_logic::plane`). On `Logic`-valued inputs the two policies
//! must agree with each other as well, since they only differ on symbols.

use proptest::prelude::*;
use symsim_logic::{ops, plane, plane::Lanes, PropagationPolicy, Value};

const POLICIES: [PropagationPolicy; 2] = [PropagationPolicy::Anonymous, PropagationPolicy::Tagged];

fn arb_logic_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::ZERO),
        Just(Value::ONE),
        Just(Value::X),
        Just(Value::Z),
    ]
}

fn arb_plane() -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(arb_logic_value(), 64)
}

/// The scalar reference result for one lane, for gate number `kind`.
fn scalar(kind: usize, a: Value, b: Value, s: Value, policy: PropagationPolicy) -> Value {
    match kind {
        0 => ops::buf(a, policy),
        1 => ops::not(a, policy),
        2 => ops::and(a, b, policy),
        3 => ops::or(a, b, policy),
        4 => ops::nand(a, b, policy),
        5 => ops::nor(a, b, policy),
        6 => ops::xor(a, b, policy),
        7 => ops::xnor(a, b, policy),
        8 => ops::mux(s, a, b, policy),
        _ => unreachable!(),
    }
}

/// The packed result for all 64 lanes, for gate number `kind`.
fn packed(kind: usize, a: Lanes, b: Lanes, s: Lanes) -> Lanes {
    match kind {
        0 => plane::buf(a),
        1 => plane::not(a),
        2 => plane::and2(a, b),
        3 => plane::or2(a, b),
        4 => plane::nand2(a, b),
        5 => plane::nor2(a, b),
        6 => plane::xor2(a, b),
        7 => plane::xnor2(a, b),
        8 => plane::mux2(s, a, b),
        _ => unreachable!(),
    }
}

proptest! {
    /// plane algebra == scalar ops on every lane, every gate kind, both
    /// policies (scalar Z outputs cannot occur: gates fold Z to X).
    #[test]
    fn planes_match_scalar_ops(
        kind in 0usize..9,
        va in arb_plane(),
        vb in arb_plane(),
        vs in arb_plane(),
    ) {
        let (la, lb, ls) = (plane::pack(&va), plane::pack(&vb), plane::pack(&vs));
        let out = packed(kind, la, lb, ls);
        prop_assert_eq!(out.val & out.unk, 0, "normalization broken");
        for policy in POLICIES {
            for i in 0..64 {
                let want = scalar(kind, va[i], vb[i], vs[i], policy);
                prop_assert_eq!(
                    out.get(i as u32),
                    want,
                    "kind {} lane {} ({} {} {}) under {:?}",
                    kind, i, va[i], vb[i], vs[i], policy
                );
            }
        }
    }

    /// pack/get round-trips modulo the documented folding: Z reads back X,
    /// 0/1/X read back unchanged.
    #[test]
    fn pack_folds_z_only(vals in arb_plane()) {
        let lanes = plane::pack(&vals);
        for (i, &v) in vals.iter().enumerate() {
            let want = if v == Value::Z { Value::X } else { v };
            prop_assert_eq!(lanes.get(i as u32), want);
        }
    }

    /// Lane-masked writeback never leaks across the mask: after
    /// `old.merge_masked(new, live)`, every dead lane reads back `old`'s
    /// value bit-exactly and every live lane reads back `new`'s — the
    /// invariant the cohort engine relies on to freeze halted paths while
    /// their siblings keep settling.
    #[test]
    fn masked_writeback_never_leaks(
        vold in arb_plane(),
        vnew in arb_plane(),
        live in any::<u64>(),
    ) {
        let old = plane::pack(&vold);
        let new = plane::pack(&vnew);
        let merged = old.merge_masked(new, live);
        prop_assert_eq!(merged.val & merged.unk, 0, "normalization broken");
        for i in 0..64u32 {
            if live >> i & 1 == 1 {
                prop_assert_eq!(merged.get(i), new.get(i), "live lane {} lost its update", i);
            } else {
                prop_assert_eq!(merged.get(i), old.get(i), "masked lane {} was disturbed", i);
            }
        }
        // changed-lane detection respects the mask the same way
        prop_assert_eq!(old.diff_mask(merged) & !live, 0, "diff outside the live mask");
    }
}
