//! Property-based tests for the logic algebra: gate soundness over random
//! concretizations, and the conservative lattice laws that the CSM relies
//! on.

use proptest::prelude::*;
use symsim_logic::{ops, Logic, PropagationPolicy, Value, Word};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::ZERO),
        Just(Value::ONE),
        Just(Value::X),
        Just(Value::Z),
        (0u32..4).prop_map(Value::symbol),
        (0u32..4).prop_map(Value::symbol_inverted),
    ]
}

fn arb_word(width: usize) -> impl Strategy<Value = Word> {
    prop::collection::vec(arb_value(), width).prop_map(Word::from_bits)
}

/// Concretize a value under an assignment of symbol ids to booleans; plain
/// unknowns take `fallback`.
fn concretize(v: Value, assign: &[bool; 4], fallback: bool) -> bool {
    match v {
        Value::Logic(Logic::Zero) => false,
        Value::Logic(Logic::One) => true,
        Value::Logic(_) => fallback,
        Value::Sym(s) => assign[s.id.0 as usize % 4] ^ s.inverted,
    }
}

proptest! {
    /// merge is commutative, idempotent, and associative; the result covers
    /// both operands (the join of the conservative lattice).
    #[test]
    fn merge_lattice_laws(a in arb_value(), b in arb_value(), c in arb_value()) {
        prop_assert_eq!(a.merge(b), b.merge(a));
        prop_assert_eq!(a.merge(a), a);
        prop_assert_eq!(a.merge(b).merge(c), a.merge(b.merge(c)));
        let m = a.merge(b);
        prop_assert!(m.covers(a) && m.covers(b));
    }

    /// covers is a partial order compatible with merge.
    #[test]
    fn covers_partial_order(a in arb_value(), b in arb_value()) {
        prop_assert!(a.covers(a));
        if a.covers(b) && b.covers(a) {
            prop_assert_eq!(a, b);
        }
        if a.covers(b) {
            prop_assert_eq!(a.merge(b), a);
        }
    }

    /// Every binary gate's symbolic output covers the gate's output on any
    /// consistent concretization of its inputs — soundness of the symbolic
    /// algebra under both propagation policies.
    #[test]
    fn gates_sound_under_concretization(
        a in arb_value(),
        b in arb_value(),
        assign in prop::array::uniform4(any::<bool>()),
        fa in any::<bool>(),
        fb in any::<bool>(),
    ) {
        for policy in [PropagationPolicy::Anonymous, PropagationPolicy::Tagged] {
            let ca = Value::from_bool(concretize(a, &assign, fa));
            let cb = Value::from_bool(concretize(b, &assign, fb));
            type GateFn = fn(Value, Value, PropagationPolicy) -> Value;
            let table: [(&str, GateFn); 6] = [
                ("and", ops::and),
                ("or", ops::or),
                ("xor", ops::xor),
                ("nand", ops::nand),
                ("nor", ops::nor),
                ("xnor", ops::xnor),
            ];
            for (name, f) in table {
                let sym = f(a, b, policy);
                let conc = f(ca, cb, policy);
                let ok = match sym {
                    Value::Logic(Logic::X) | Value::Logic(Logic::Z) => true,
                    Value::Sym(s) => {
                        Value::from_bool(assign[s.id.0 as usize % 4] ^ s.inverted) == conc
                    }
                    known => known == conc,
                };
                prop_assert!(ok, "{name}({a},{b})={sym} vs concrete {conc} [{policy:?}]");
            }
            // mux with a third operand
            let sel = a;
            let m = ops::mux(sel, a, b, policy);
            let cm = ops::mux(ca, ca, cb, policy);
            let ok = match m {
                Value::Logic(Logic::X) | Value::Logic(Logic::Z) => true,
                Value::Sym(s) => Value::from_bool(assign[s.id.0 as usize % 4] ^ s.inverted) == cm,
                known => known == cm,
            };
            prop_assert!(ok, "mux({a},{a},{b})={m} vs {cm} [{policy:?}]");
        }
    }

    /// Word-level merge/covers inherit the bitwise laws.
    #[test]
    fn word_merge_covers(a in arb_word(8), b in arb_word(8)) {
        let m = a.merge(&b);
        prop_assert!(m.covers(&a) && m.covers(&b));
        prop_assert_eq!(&a.merge(&a), &a);
        prop_assert_eq!(a.merge(&b), b.merge(&a));
    }

    /// u64 round trip for arbitrary concrete words.
    #[test]
    fn word_u64_round_trip(v in any::<u64>(), width in 1usize..64) {
        let w = Word::from_u64(v, width);
        let mask = if width == 64 { u64::MAX } else { (1 << width) - 1 };
        prop_assert_eq!(w.to_u64(), Some(v & mask));
        prop_assert!(w.is_known());
    }

    /// Inverters are involutions under the tagged policy.
    #[test]
    fn not_involution(a in arb_value()) {
        let p = PropagationPolicy::Tagged;
        let nn = ops::not(ops::not(a, p), p);
        // plain unknowns lose identity; known values and tagged symbols
        // round-trip exactly
        match a {
            Value::Logic(Logic::X) | Value::Logic(Logic::Z) => prop_assert!(nn.is_x()),
            other => prop_assert_eq!(nn, other),
        }
    }
}
