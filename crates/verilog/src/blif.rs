//! BLIF (Berkeley Logic Interchange Format) reader/writer — the academic
//! netlist interchange used by SIS/ABC-era tools, supported so designs can
//! reach the co-analysis flow from logic-synthesis pipelines as well as
//! from Verilog.
//!
//! Supported subset: `.model`/`.inputs`/`.outputs`/`.names` (single-output
//! covers with `0/1/-` literals and output value `1`), `.latch` (init
//! values 0/1/2/3), `.end`. Memories have no BLIF representation;
//! [`write_blif`] rejects netlists containing them.
//!
//! # Example
//!
//! ```
//! use symsim_verilog::{parse_blif, write_blif};
//!
//! let src = "\
//! .model mux
//! .inputs s a b
//! .outputs y
//! .names s a b y
//! 01- 1
//! 1-1 1
//! .end
//! ";
//! let nl = parse_blif(src).expect("parses");
//! assert_eq!(nl.inputs().len(), 3);
//! let round = parse_blif(&write_blif(&nl).expect("writes")).expect("reparses");
//! assert_eq!(round.outputs().len(), 1);
//! ```

use std::fmt;

use symsim_logic::Logic;
use symsim_netlist::{CellKind, Gate, NetId, Netlist};

/// Errors from [`parse_blif`] / [`write_blif`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlifError {
    /// 1-based source line (0 for writer-side errors).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl BlifError {
    fn new(line: usize, message: impl Into<String>) -> BlifError {
        BlifError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for BlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "blif: {}", self.message)
        } else {
            write!(f, "blif line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for BlifError {}

/// Parses a BLIF model into a netlist. `.names` covers are elaborated into
/// AND/OR/NOT trees over the library cells.
///
/// # Errors
///
/// Returns [`BlifError`] on syntax errors or unsupported constructs.
pub fn parse_blif(src: &str) -> Result<Netlist, BlifError> {
    // join continuation lines ('\' at end)
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (i, raw) in src.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim_end();
        let (text, continued) = match line.strip_suffix('\\') {
            Some(t) => (t.to_string(), true),
            None => (line.to_string(), false),
        };
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(&text);
                if continued {
                    pending = Some((start, acc));
                } else {
                    logical.push((start, acc));
                }
            }
            None => {
                if continued {
                    pending = Some((i + 1, text));
                } else if !text.trim().is_empty() {
                    logical.push((i + 1, text));
                }
            }
        }
    }

    let mut nl = Netlist::new("blif");
    let mut nets = std::collections::HashMap::<String, NetId>::new();
    let mut get = |nl: &mut Netlist, name: &str| -> NetId {
        if let Some(&n) = nets.get(name) {
            n
        } else {
            let n = nl.add_net(name);
            nets.insert(name.to_string(), n);
            n
        }
    };

    let mut it = logical.iter().peekable();
    let mut saw_model = false;
    while let Some((line_no, text)) = it.next() {
        let mut words = text.split_whitespace();
        let Some(keyword) = words.next() else {
            continue;
        };
        match keyword {
            ".model" => {
                if saw_model {
                    return Err(BlifError::new(*line_no, "multiple .model sections"));
                }
                saw_model = true;
                nl.name = words.next().unwrap_or("blif").to_string();
            }
            ".inputs" => {
                for w in words {
                    let n = get(&mut nl, w);
                    nl.add_input(n);
                }
            }
            ".outputs" => {
                for w in words {
                    let n = get(&mut nl, w);
                    nl.add_output(n);
                }
            }
            ".latch" => {
                let d = words
                    .next()
                    .ok_or_else(|| BlifError::new(*line_no, ".latch needs input"))?;
                let q = words
                    .next()
                    .ok_or_else(|| BlifError::new(*line_no, ".latch needs output"))?;
                // optional [type clk] then init
                let rest: Vec<&str> = words.collect();
                let init = match rest.last() {
                    Some(&"0") => Logic::Zero,
                    Some(&"1") => Logic::One,
                    Some(&"2") | Some(&"3") | None => Logic::X,
                    Some(other) if other.chars().all(char::is_alphabetic) => Logic::X,
                    Some(other) => {
                        return Err(BlifError::new(
                            *line_no,
                            format!("bad latch init \"{other}\""),
                        ))
                    }
                };
                let d = get(&mut nl, d);
                let q = get(&mut nl, q);
                nl.add_dff(d, q, init);
            }
            ".names" => {
                let signals: Vec<&str> = words.collect();
                if signals.is_empty() {
                    return Err(BlifError::new(*line_no, ".names needs signals"));
                }
                let output = get(&mut nl, signals[signals.len() - 1]);
                let inputs: Vec<NetId> = signals[..signals.len() - 1]
                    .iter()
                    .map(|w| get(&mut nl, w))
                    .collect();
                // collect cover rows
                let mut rows: Vec<(String, char)> = Vec::new();
                while let Some((row_line, row)) = it.peek() {
                    let t = row.trim();
                    if t.starts_with('.') {
                        break;
                    }
                    let mut parts = t.split_whitespace();
                    let (pattern, out_bit) = if inputs.is_empty() {
                        (String::new(), parts.next().unwrap_or("1"))
                    } else {
                        let p = parts
                            .next()
                            .ok_or_else(|| BlifError::new(*row_line, "empty cover row"))?;
                        (p.to_string(), parts.next().unwrap_or("1"))
                    };
                    let out_char = out_bit.chars().next().unwrap_or('1');
                    if out_char != '1' {
                        return Err(BlifError::new(
                            *row_line,
                            "only on-set (output 1) covers are supported",
                        ));
                    }
                    if pattern.len() != inputs.len() {
                        return Err(BlifError::new(
                            *row_line,
                            format!(
                                "cover width {} does not match {} inputs",
                                pattern.len(),
                                inputs.len()
                            ),
                        ));
                    }
                    rows.push((pattern, out_char));
                    it.next();
                }
                elaborate_cover(&mut nl, &inputs, output, &rows)
                    .map_err(|m| BlifError::new(*line_no, m))?;
            }
            ".end" => break,
            other => {
                return Err(BlifError::new(
                    *line_no,
                    format!("unsupported construct \"{other}\""),
                ))
            }
        }
    }
    nl.validate()
        .map_err(|e| BlifError::new(0, format!("invalid netlist: {e}")))?;
    Ok(nl)
}

/// Builds the AND/OR tree for one `.names` single-output cover.
fn elaborate_cover(
    nl: &mut Netlist,
    inputs: &[NetId],
    output: NetId,
    rows: &[(String, char)],
) -> Result<(), String> {
    let fresh = |nl: &mut Netlist, tag: &str| {
        let i = nl.net_count();
        nl.add_net(format!("blif_{tag}_{i}"))
    };
    if rows.is_empty() {
        nl.add_gate(CellKind::Const0, &[], output);
        return Ok(());
    }
    if inputs.is_empty() {
        // a cover with no inputs and at least one on-set row is constant 1
        nl.add_gate(CellKind::Const1, &[], output);
        return Ok(());
    }
    let mut terms: Vec<NetId> = Vec::with_capacity(rows.len());
    for (pattern, _) in rows {
        let mut literals: Vec<NetId> = Vec::new();
        for (i, c) in pattern.chars().enumerate() {
            match c {
                '1' => literals.push(inputs[i]),
                '0' => {
                    let n = fresh(nl, "not");
                    nl.add_gate(CellKind::Not, &[inputs[i]], n);
                    literals.push(n);
                }
                '-' => {}
                other => return Err(format!("bad cover literal '{other}'")),
            }
        }
        let term = match literals.len() {
            0 => {
                let n = fresh(nl, "one");
                nl.add_gate(CellKind::Const1, &[], n);
                n
            }
            1 => literals[0],
            _ => {
                let mut acc = literals[0];
                for &lit in &literals[1..] {
                    let n = fresh(nl, "and");
                    nl.add_gate(CellKind::And2, &[acc, lit], n);
                    acc = n;
                }
                acc
            }
        };
        terms.push(term);
    }
    if terms.len() == 1 {
        nl.add_gate(CellKind::Buf, &[terms[0]], output);
    } else {
        let mut acc = terms[0];
        for &t in &terms[1..terms.len() - 1] {
            let n = fresh(nl, "or");
            nl.add_gate(CellKind::Or2, &[acc, t], n);
            acc = n;
        }
        nl.add_gate(CellKind::Or2, &[acc, terms[terms.len() - 1]], output);
    }
    Ok(())
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '[' || c == ']' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Renders a netlist as BLIF. Every library cell becomes a `.names` cover;
/// flip-flops become `.latch` lines.
///
/// # Errors
///
/// Returns [`BlifError`] if the netlist contains memories, which BLIF
/// cannot express.
pub fn write_blif(netlist: &Netlist) -> Result<String, BlifError> {
    if !netlist.memories().is_empty() {
        return Err(BlifError::new(0, "BLIF cannot express memory arrays"));
    }
    use std::fmt::Write as _;
    let mut out = String::new();
    let name = |n: NetId| sanitize(netlist.net_name(n));
    let _ = writeln!(out, ".model {}", sanitize(&netlist.name));
    let _ = writeln!(
        out,
        ".inputs {}",
        netlist
            .inputs()
            .iter()
            .map(|&n| name(n))
            .collect::<Vec<_>>()
            .join(" ")
    );
    let _ = writeln!(
        out,
        ".outputs {}",
        netlist
            .outputs()
            .iter()
            .map(|&n| name(n))
            .collect::<Vec<_>>()
            .join(" ")
    );
    for g in netlist.gates() {
        let Gate {
            kind,
            inputs,
            output,
        } = g;
        let ins: Vec<String> = inputs.iter().map(|&n| name(n)).collect();
        let _ = writeln!(out, ".names {} {}", ins.join(" "), name(*output));
        let cover: &[&str] = match kind {
            CellKind::Const0 => &[],
            CellKind::Const1 => &["1"],
            CellKind::Buf => &["1 1"],
            CellKind::Not => &["0 1"],
            CellKind::And2 => &["11 1"],
            CellKind::Or2 => &["1- 1", "-1 1"],
            CellKind::Nand2 => &["0- 1", "-0 1"],
            CellKind::Nor2 => &["00 1"],
            CellKind::Xor2 => &["10 1", "01 1"],
            CellKind::Xnor2 => &["00 1", "11 1"],
            CellKind::Mux2 => &["01- 1", "1-1 1"],
        };
        for row in cover {
            let _ = writeln!(out, "{row}");
        }
    }
    for d in netlist.dffs() {
        let init = match d.init {
            Logic::Zero => "0",
            Logic::One => "1",
            _ => "3",
        };
        let _ = writeln!(out, ".latch {} {} {}", name(d.d), name(d.q), init);
    }
    out.push_str(".end\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_covers_and_latches() {
        let src = "\
# a toggle flip-flop gated by en
.model toggle
.inputs en
.outputs q
.names en q d
10 1
01 1
.latch d q 0
.end
";
        let nl = parse_blif(src).unwrap();
        assert_eq!(nl.name, "toggle");
        assert_eq!(nl.dff_count(), 1);
        assert_eq!(nl.dffs()[0].init, Logic::Zero);
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn constant_covers() {
        let src = ".model c\n.inputs a\n.outputs y z\n.names y\n1\n.names z\n.end\n";
        let nl = parse_blif(src).unwrap();
        assert_eq!(nl.gate_count(), 2);
        assert!(matches!(nl.gates()[0].kind, CellKind::Const1));
        assert!(matches!(nl.gates()[1].kind, CellKind::Const0));
    }

    #[test]
    fn continuation_lines() {
        let src = ".model c\n.inputs \\\na b\n.outputs y\n.names a b y\n11 1\n.end\n";
        let nl = parse_blif(src).unwrap();
        assert_eq!(nl.inputs().len(), 2);
    }

    #[test]
    fn rejects_unsupported() {
        assert!(parse_blif(".model m\n.gate nand2 a=x b=y O=z\n.end").is_err());
        assert!(parse_blif(".model m\n.inputs a\n.outputs y\n.names a y\n1 0\n.end").is_err());
        assert!(parse_blif(".model m\n.inputs a\n.outputs y\n.names a y\n11 1\n.end").is_err());
    }

    #[test]
    fn writer_rejects_memories() {
        let mut nl = Netlist::new("m");
        let a = nl.add_net("a");
        nl.add_input(a);
        nl.add_memory("ram", 4, 1);
        assert!(write_blif(&nl).is_err());
    }
}
