use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use symsim_logic::Logic;
use symsim_netlist::{CellKind, NetId, Netlist};

/// Splits a net name into `(base, Some(index))` for `base[index]` names.
fn split_indexed(name: &str) -> (&str, Option<usize>) {
    if let Some(open) = name.rfind('[') {
        if name.ends_with(']') {
            if let Ok(idx) = name[open + 1..name.len() - 1].parse::<usize>() {
                return (&name[..open], Some(idx));
            }
        }
    }
    (name, None)
}

fn net_ref(netlist: &Netlist, net: NetId) -> String {
    netlist.net_name(net).to_string()
}

/// Renders a netlist as structural Verilog in the dialect
/// [`crate::parse_netlist`] accepts.
pub fn write_netlist(netlist: &Netlist) -> String {
    let mut out = String::new();
    let inputs: BTreeSet<NetId> = netlist.inputs().iter().copied().collect();
    let outputs: BTreeSet<NetId> = netlist.outputs().iter().copied().collect();

    // group names into scalars and vectors
    let mut vectors: BTreeMap<String, usize> = BTreeMap::new(); // base -> max index
    let mut scalars: BTreeSet<String> = BTreeSet::new();
    let mut dir: BTreeMap<String, &'static str> = BTreeMap::new();
    for i in 0..netlist.net_count() {
        let id = NetId(i as u32);
        let name = netlist.net_name(id);
        let (base, idx) = split_indexed(name);
        match idx {
            Some(idx) => {
                let e = vectors.entry(base.to_string()).or_insert(0);
                *e = (*e).max(idx);
            }
            None => {
                scalars.insert(base.to_string());
            }
        }
        let d = if inputs.contains(&id) {
            "input"
        } else if outputs.contains(&id) {
            "output"
        } else {
            "wire"
        };
        // a base keeps the strongest direction seen on any bit
        let entry = dir.entry(base.to_string()).or_insert("wire");
        if *entry == "wire" {
            *entry = d;
        }
    }

    // header
    let port_names: Vec<String> = dir
        .iter()
        .filter(|(_, d)| **d != "wire")
        .map(|(n, _)| n.clone())
        .collect();
    let _ = writeln!(out, "module {} ({});", netlist.name, port_names.join(", "));

    for (base, d) in &dir {
        if let Some(&max) = vectors.get(base) {
            let _ = writeln!(out, "  {d} [{max}:0] {base};");
        } else {
            let _ = writeln!(out, "  {d} {base};");
        }
    }

    // gates
    for (i, g) in netlist.gates().iter().enumerate() {
        let y = net_ref(netlist, g.output);
        match g.kind {
            CellKind::Const0 | CellKind::Const1 => {
                let _ = writeln!(out, "  {} g{} (.Y({}));", g.kind.verilog_name(), i, y);
            }
            CellKind::Mux2 => {
                let _ = writeln!(
                    out,
                    "  mux2 g{} (.Y({}), .S({}), .A({}), .B({}));",
                    i,
                    y,
                    net_ref(netlist, g.inputs[0]),
                    net_ref(netlist, g.inputs[1]),
                    net_ref(netlist, g.inputs[2]),
                );
            }
            _ => {
                let ins: Vec<String> = g.inputs.iter().map(|&n| net_ref(netlist, n)).collect();
                let _ = writeln!(
                    out,
                    "  {} g{} ({}, {});",
                    g.kind.verilog_name(),
                    i,
                    y,
                    ins.join(", ")
                );
            }
        }
    }

    // flip-flops
    for (i, d) in netlist.dffs().iter().enumerate() {
        let init = match d.init {
            Logic::Zero => "1'b0",
            Logic::One => "1'b1",
            Logic::X => "1'bx",
            Logic::Z => "1'bz",
        };
        let _ = writeln!(
            out,
            "  dff #(.INIT({init})) ff{} (.D({}), .Q({}));",
            i,
            net_ref(netlist, d.d),
            net_ref(netlist, d.q),
        );
    }

    // memories
    for m in netlist.memories() {
        let mut pins = Vec::new();
        for (pi, rp) in m.read_ports.iter().enumerate() {
            pins.push(format!(".RA{pi}({})", concat_ref(netlist, &rp.addr)));
            pins.push(format!(".RD{pi}({})", concat_ref(netlist, &rp.data)));
        }
        for (pi, wp) in m.write_ports.iter().enumerate() {
            pins.push(format!(".WA{pi}({})", concat_ref(netlist, &wp.addr)));
            pins.push(format!(".WD{pi}({})", concat_ref(netlist, &wp.data)));
            pins.push(format!(".WE{pi}({})", net_ref(netlist, wp.we)));
        }
        let _ = writeln!(
            out,
            "  mem #(.DEPTH({}), .WIDTH({})) {} ({});",
            m.depth,
            m.width,
            m.name,
            pins.join(", ")
        );
    }

    out.push_str("endmodule\n");
    out
}

/// Verilog concatenations are MSB-first; buses are stored LSB-first.
fn concat_ref(netlist: &Netlist, bus: &[NetId]) -> String {
    let parts: Vec<String> = bus.iter().rev().map(|&n| net_ref(netlist, n)).collect();
    format!("{{{}}}", parts.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsim_netlist::RtlBuilder;

    #[test]
    fn writes_ports_and_gates() {
        let mut b = RtlBuilder::new("m");
        let a = b.input("a", 2);
        let y = b.not(&a);
        b.output("y", &y);
        let nl = b.finish().unwrap();
        let text = write_netlist(&nl);
        assert!(text.contains("module m (a, y);"));
        assert!(text.contains("input [1:0] a;"));
        assert!(text.contains("output [1:0] y;"));
        assert!(text.contains("not g0 ("));
        assert!(text.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn writes_dff_and_mem() {
        let mut b = RtlBuilder::new("s");
        let r = b.reg("q", 1, 1);
        let q = r.q.clone();
        let d = b.not(&q);
        b.drive_reg(r, &d);
        let mh = b.memory("ram", 4, 2);
        let _ = b.mem_read(mh, &q.concat(&q));
        b.output("qo", &q);
        let nl = b.finish().unwrap();
        let text = write_netlist(&nl);
        assert!(text.contains("dff #(.INIT(1'b1)) ff0"));
        assert!(text.contains("mem #(.DEPTH(4), .WIDTH(2)) ram"));
        assert!(text.contains(".RA0({"));
    }

    #[test]
    fn split_indexed_names() {
        assert_eq!(split_indexed("a[3]"), ("a", Some(3)));
        assert_eq!(split_indexed("plain"), ("plain", None));
        assert_eq!(split_indexed("w[x]"), ("w[x]", None));
    }
}
