//! # symsim-verilog
//!
//! Structural Verilog I/O for the symbolic co-analysis tool. The paper's
//! flow consumes a *gate-level netlist* (post-synthesis) and emits the
//! bespoke netlist back out; this crate implements both directions for the
//! structural subset such netlists use:
//!
//! * standard gate primitives (`and`, `or`, `nand`, `nor`, `xor`, `xnor`,
//!   `buf`, `not`) with positional `(output, inputs...)` connections,
//! * library cells `mux2`, `dff` (with an `INIT` parameter), `const0`,
//!   `const1`, and `mem` (with `DEPTH`/`WIDTH` parameters) using named pin
//!   connections,
//! * `assign` statements over scalar operands with `~ & ^ | ?:` expressions
//!   (elaborated straight to gates),
//! * scalar and vector port/wire declarations; vector bits map to nets named
//!   `base[i]`.
//!
//! The [`blif`] module additionally reads and writes BLIF, the academic
//! logic-synthesis interchange format.
//!
//! [`write_netlist`] and [`parse_netlist`] round-trip any
//! [`symsim_netlist::Netlist`].
//!
//! # Example
//!
//! ```
//! use symsim_netlist::RtlBuilder;
//! use symsim_verilog::{parse_netlist, write_netlist};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = RtlBuilder::new("inv2");
//! let a = b.input("a", 2);
//! let y = b.not(&a);
//! b.output("y", &y);
//! let nl = b.finish()?;
//!
//! let text = write_netlist(&nl);
//! assert!(text.contains("module inv2"));
//! let back = parse_netlist(&text)?;
//! assert_eq!(back.gate_count(), nl.gate_count());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blif;
mod parse;
mod write;

pub use blif::{parse_blif, write_blif, BlifError};
pub use parse::{parse_netlist, ParseError};
pub use write::write_netlist;
