use std::collections::HashMap;
use std::fmt;

use symsim_logic::Logic;
use symsim_netlist::{CellKind, MemoryId, NetId, Netlist};

/// Errors from [`parse_netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line number (1-based) where the problem was detected.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(u64),
    BitLit(Logic),
    Sym(char),
}

struct Lexer {
    toks: Vec<(usize, Tok)>, // (line, token)
    pos: usize,
}

fn lex(src: &str) -> Result<Lexer, ParseError> {
    let mut toks = Vec::new();
    let mut chars = src.char_indices().peekable();
    let mut line = 1usize;
    let bytes = src.as_bytes();
    while let Some((i, c)) = chars.next() {
        match c {
            '\n' => line += 1,
            c if c.is_whitespace() => {}
            '/' => match chars.peek() {
                Some((_, '/')) => {
                    for (_, c2) in chars.by_ref() {
                        if c2 == '\n' {
                            line += 1;
                            break;
                        }
                    }
                }
                Some((_, '*')) => {
                    chars.next();
                    let mut prev = ' ';
                    for (_, c2) in chars.by_ref() {
                        if c2 == '\n' {
                            line += 1;
                        }
                        if prev == '*' && c2 == '/' {
                            break;
                        }
                        prev = c2;
                    }
                }
                _ => {
                    return Err(ParseError {
                        line,
                        message: "unexpected '/'".into(),
                    })
                }
            },
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                // bit literal like 1'b0 / 1'bx
                if j < bytes.len() && bytes[j] == b'\'' {
                    // consume width digits already; expect 'b<char>
                    while let Some((k, _)) = chars.peek().copied() {
                        if k < j {
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    chars.next(); // the quote
                    let base = chars.next().map(|(_, c)| c);
                    if base != Some('b') {
                        return Err(ParseError {
                            line,
                            message: "only 'b bit literals are supported".into(),
                        });
                    }
                    let val = chars.next().map(|(_, c)| c).ok_or(ParseError {
                        line,
                        message: "truncated bit literal".into(),
                    })?;
                    let l = match val {
                        '0' => Logic::Zero,
                        '1' => Logic::One,
                        'x' | 'X' => Logic::X,
                        'z' | 'Z' => Logic::Z,
                        other => {
                            return Err(ParseError {
                                line,
                                message: format!("bad bit literal value '{other}'"),
                            })
                        }
                    };
                    toks.push((line, Tok::BitLit(l)));
                } else {
                    let n: u64 = src[i..j].parse().map_err(|_| ParseError {
                        line,
                        message: "bad number".into(),
                    })?;
                    while let Some((k, _)) = chars.peek().copied() {
                        if k < j {
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    toks.push((line, Tok::Num(n)));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '\\' => {
                let start = if c == '\\' { i + 1 } else { i };
                let mut j = i + c.len_utf8();
                if c == '\\' {
                    // escaped identifier: runs to whitespace
                    while j < bytes.len() && !bytes[j].is_ascii_whitespace() {
                        j += 1;
                    }
                } else {
                    while j < bytes.len()
                        && (bytes[j].is_ascii_alphanumeric()
                            || bytes[j] == b'_'
                            || bytes[j] == b'$')
                    {
                        j += 1;
                    }
                }
                while let Some((k, _)) = chars.peek().copied() {
                    if k < j {
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push((line, Tok::Ident(src[start..j].to_string())));
            }
            '(' | ')' | '{' | '}' | '[' | ']' | ',' | ';' | ':' | '.' | '#' | '=' | '~' | '&'
            | '|' | '^' | '?' => {
                toks.push((line, Tok::Sym(c)));
            }
            other => {
                return Err(ParseError {
                    line,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(Lexer { toks, pos: 0 })
}

impl Lexer {
    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|(l, _)| *l)
            .unwrap_or(0)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_sym(&mut self, c: char) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Sym(s)) if s == c => Ok(()),
            other => Err(self.err(format!("expected '{c}', found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_num(&mut self) -> Result<u64, ParseError> {
        match self.next() {
            Some(Tok::Num(n)) => Ok(n),
            other => Err(self.err(format!("expected number, found {other:?}"))),
        }
    }

    fn eat_sym(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Sym(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
}

struct NetTable {
    map: HashMap<String, NetId>,
}

impl NetTable {
    fn get(&mut self, nl: &mut Netlist, name: &str) -> NetId {
        if let Some(&id) = self.map.get(name) {
            return id;
        }
        let id = nl.add_net(name);
        self.map.insert(name.to_string(), id);
        id
    }
}

/// Parses structural Verilog in the dialect produced by
/// [`crate::write_netlist`] (see the crate docs for the supported subset).
///
/// # Errors
///
/// Returns a [`ParseError`] with a line number on any lexical or syntactic
/// problem, unsupported construct, or arity mismatch.
pub fn parse_netlist(src: &str) -> Result<Netlist, ParseError> {
    let mut lx = lex(src)?;
    match lx.next() {
        Some(Tok::Ident(kw)) if kw == "module" => {}
        other => {
            return Err(lx.err(format!("expected 'module', found {other:?}")));
        }
    }
    let name = lx.expect_ident()?;
    let mut nl = Netlist::new(name);
    let mut nets = NetTable {
        map: HashMap::new(),
    };

    // header port list (names only)
    lx.expect_sym('(')?;
    if !lx.eat_sym(')') {
        loop {
            let _ = lx.expect_ident()?;
            if lx.eat_sym(')') {
                break;
            }
            lx.expect_sym(',')?;
        }
    }
    lx.expect_sym(';')?;

    let mut pending_ports: Vec<(String, Vec<NetId>)> = Vec::new(); // (dir, bits LSB-first)

    loop {
        let tok = lx
            .next()
            .ok_or_else(|| lx.err("unexpected end of file (missing endmodule)"))?;
        let kw = match tok {
            Tok::Ident(s) => s,
            other => return Err(lx.err(format!("expected item, found {other:?}"))),
        };
        match kw.as_str() {
            "endmodule" => break,
            "assign" => {
                parse_assign(&mut lx, &mut nl, &mut nets)?;
            }
            "input" | "output" | "wire" => {
                let dir = kw;
                // optional [msb:lsb]
                let mut range: Option<(u64, u64)> = None;
                if lx.eat_sym('[') {
                    let msb = lx.expect_num()?;
                    lx.expect_sym(':')?;
                    let lsb = lx.expect_num()?;
                    lx.expect_sym(']')?;
                    range = Some((msb, lsb));
                }
                loop {
                    let base = lx.expect_ident()?;
                    let bits: Vec<NetId> = match range {
                        None => vec![nets.get(&mut nl, &base)],
                        Some((msb, lsb)) => (lsb..=msb)
                            .map(|i| nets.get(&mut nl, &format!("{base}[{i}]")))
                            .collect(),
                    };
                    if dir != "wire" {
                        pending_ports.push((dir.clone(), bits));
                    }
                    if lx.eat_sym(';') {
                        break;
                    }
                    lx.expect_sym(',')?;
                }
            }
            cell => {
                parse_instance(cell, &mut lx, &mut nl, &mut nets)?;
            }
        }
    }

    for (dir, bits) in pending_ports {
        for b in bits {
            if dir == "input" {
                nl.add_input(b);
            } else {
                nl.add_output(b);
            }
        }
    }
    Ok(nl)
}

/// `assign lhs = expr;` over scalar operands: `~ & ^ | ?:` with the usual
/// Verilog precedence, parenthesization, bit-selects, and `1'b0`/`1'b1`
/// literals. Elaborated directly to library gates.
fn parse_assign(lx: &mut Lexer, nl: &mut Netlist, nets: &mut NetTable) -> Result<(), ParseError> {
    let lhs = parse_net_ref(lx, nl, nets)?;
    let lhs = single(lhs, lx, "assign target")?;
    lx.expect_sym('=')?;
    let rhs = parse_ternary(lx, nl, nets)?;
    lx.expect_sym(';')?;
    nl.add_gate(CellKind::Buf, &[rhs], lhs);
    Ok(())
}

fn fresh_expr_net(nl: &mut Netlist) -> NetId {
    let n = nl.net_count();
    nl.add_net(format!("assign_expr_{n}"))
}

fn parse_ternary(
    lx: &mut Lexer,
    nl: &mut Netlist,
    nets: &mut NetTable,
) -> Result<NetId, ParseError> {
    let cond = parse_or(lx, nl, nets)?;
    if !lx.eat_sym('?') {
        return Ok(cond);
    }
    let when1 = parse_ternary(lx, nl, nets)?;
    lx.expect_sym(':')?;
    let when0 = parse_ternary(lx, nl, nets)?;
    let out = fresh_expr_net(nl);
    nl.add_gate(CellKind::Mux2, &[cond, when0, when1], out);
    Ok(out)
}

fn parse_binary_chain(
    lx: &mut Lexer,
    nl: &mut Netlist,
    nets: &mut NetTable,
    op: char,
    kind: CellKind,
    next: fn(&mut Lexer, &mut Netlist, &mut NetTable) -> Result<NetId, ParseError>,
) -> Result<NetId, ParseError> {
    let mut acc = next(lx, nl, nets)?;
    while lx.eat_sym(op) {
        let rhs = next(lx, nl, nets)?;
        let out = fresh_expr_net(nl);
        nl.add_gate(kind, &[acc, rhs], out);
        acc = out;
    }
    Ok(acc)
}

fn parse_or(lx: &mut Lexer, nl: &mut Netlist, nets: &mut NetTable) -> Result<NetId, ParseError> {
    parse_binary_chain(lx, nl, nets, '|', CellKind::Or2, parse_xor)
}

fn parse_xor(lx: &mut Lexer, nl: &mut Netlist, nets: &mut NetTable) -> Result<NetId, ParseError> {
    parse_binary_chain(lx, nl, nets, '^', CellKind::Xor2, parse_and)
}

fn parse_and(lx: &mut Lexer, nl: &mut Netlist, nets: &mut NetTable) -> Result<NetId, ParseError> {
    parse_binary_chain(lx, nl, nets, '&', CellKind::And2, parse_unary)
}

fn parse_unary(lx: &mut Lexer, nl: &mut Netlist, nets: &mut NetTable) -> Result<NetId, ParseError> {
    if lx.eat_sym('~') {
        let inner = parse_unary(lx, nl, nets)?;
        let out = fresh_expr_net(nl);
        nl.add_gate(CellKind::Not, &[inner], out);
        return Ok(out);
    }
    if lx.eat_sym('(') {
        let inner = parse_ternary(lx, nl, nets)?;
        lx.expect_sym(')')?;
        return Ok(inner);
    }
    if let Some(Tok::BitLit(l)) = lx.peek() {
        let l = *l;
        lx.next();
        let out = fresh_expr_net(nl);
        let kind = match l {
            Logic::One => CellKind::Const1,
            _ => CellKind::Const0,
        };
        nl.add_gate(kind, &[], out);
        return Ok(out);
    }
    let pins = parse_net_ref(lx, nl, nets)?;
    single(pins, lx, "expression operand")
}

/// A net reference: `ident`, `ident[idx]`, or `{refs, ...}` (MSB first).
fn parse_net_ref(
    lx: &mut Lexer,
    nl: &mut Netlist,
    nets: &mut NetTable,
) -> Result<Vec<NetId>, ParseError> {
    if lx.eat_sym('{') {
        let mut msb_first = Vec::new();
        loop {
            let mut inner = parse_net_ref(lx, nl, nets)?;
            msb_first.append(&mut inner);
            if lx.eat_sym('}') {
                break;
            }
            lx.expect_sym(',')?;
        }
        msb_first.reverse(); // to LSB-first
        return Ok(msb_first);
    }
    let base = lx.expect_ident()?;
    if lx.eat_sym('[') {
        let idx = lx.expect_num()?;
        lx.expect_sym(']')?;
        Ok(vec![nets.get(nl, &format!("{base}[{idx}]"))])
    } else {
        Ok(vec![nets.get(nl, &base)])
    }
}

fn single(pins: Vec<NetId>, lx: &Lexer, what: &str) -> Result<NetId, ParseError> {
    if pins.len() != 1 {
        return Err(lx.err(format!("{what} must be a single net")));
    }
    Ok(pins[0])
}

fn parse_instance(
    cell: &str,
    lx: &mut Lexer,
    nl: &mut Netlist,
    nets: &mut NetTable,
) -> Result<(), ParseError> {
    // optional parameters
    let mut params: HashMap<String, u64> = HashMap::new();
    let mut init = Logic::X;
    if lx.eat_sym('#') {
        lx.expect_sym('(')?;
        loop {
            lx.expect_sym('.')?;
            let pname = lx.expect_ident()?;
            lx.expect_sym('(')?;
            match lx.next() {
                Some(Tok::Num(n)) => {
                    params.insert(pname, n);
                }
                Some(Tok::BitLit(l)) => {
                    if pname == "INIT" {
                        init = l;
                    }
                }
                other => {
                    return Err(lx.err(format!("bad parameter value {other:?}")));
                }
            }
            lx.expect_sym(')')?;
            if lx.eat_sym(')') {
                break;
            }
            lx.expect_sym(',')?;
        }
    }
    let inst_name = lx.expect_ident()?;
    lx.expect_sym('(')?;

    // named or positional connections
    let mut named: Vec<(String, Vec<NetId>)> = Vec::new();
    let mut positional: Vec<Vec<NetId>> = Vec::new();
    if !lx.eat_sym(')') {
        loop {
            if lx.eat_sym('.') {
                let pin = lx.expect_ident()?;
                lx.expect_sym('(')?;
                let nets_ref = parse_net_ref(lx, nl, nets)?;
                lx.expect_sym(')')?;
                named.push((pin, nets_ref));
            } else {
                positional.push(parse_net_ref(lx, nl, nets)?);
            }
            if lx.eat_sym(')') {
                break;
            }
            lx.expect_sym(',')?;
        }
    }
    lx.expect_sym(';')?;

    let pin = |name: &str| -> Option<Vec<NetId>> {
        named
            .iter()
            .find(|(p, _)| p == name)
            .map(|(_, n)| n.clone())
    };

    match cell {
        "and" | "or" | "nand" | "nor" | "xor" | "xnor" | "buf" | "not" => {
            let kind = CellKind::from_verilog_name(cell).expect("known primitive");
            if positional.len() != kind.arity() + 1 {
                return Err(lx.err(format!(
                    "{cell} expects {} connections, got {}",
                    kind.arity() + 1,
                    positional.len()
                )));
            }
            let out = single(positional[0].clone(), lx, "gate output")?;
            let ins: Vec<NetId> = positional[1..]
                .iter()
                .map(|p| single(p.clone(), lx, "gate input"))
                .collect::<Result<_, _>>()?;
            nl.add_gate(kind, &ins, out);
        }
        "const0" | "const1" => {
            let y = single(
                pin("Y").ok_or_else(|| lx.err("const cell needs .Y"))?,
                lx,
                "Y",
            )?;
            let kind = if cell == "const1" {
                CellKind::Const1
            } else {
                CellKind::Const0
            };
            nl.add_gate(kind, &[], y);
        }
        "mux2" => {
            let y = single(pin("Y").ok_or_else(|| lx.err("mux2 needs .Y"))?, lx, "Y")?;
            let s = single(pin("S").ok_or_else(|| lx.err("mux2 needs .S"))?, lx, "S")?;
            let a = single(pin("A").ok_or_else(|| lx.err("mux2 needs .A"))?, lx, "A")?;
            let b = single(pin("B").ok_or_else(|| lx.err("mux2 needs .B"))?, lx, "B")?;
            nl.add_gate(CellKind::Mux2, &[s, a, b], y);
        }
        "dff" => {
            let d = single(pin("D").ok_or_else(|| lx.err("dff needs .D"))?, lx, "D")?;
            let q = single(pin("Q").ok_or_else(|| lx.err("dff needs .Q"))?, lx, "Q")?;
            nl.add_dff(d, q, init);
        }
        "mem" => {
            let depth = *params
                .get("DEPTH")
                .ok_or_else(|| lx.err("mem needs DEPTH parameter"))?
                as usize;
            let width = *params
                .get("WIDTH")
                .ok_or_else(|| lx.err("mem needs WIDTH parameter"))?
                as usize;
            let mem: MemoryId = nl.add_memory(inst_name, depth, width);
            for i in 0.. {
                let (ra, rd) = (pin(&format!("RA{i}")), pin(&format!("RD{i}")));
                match (ra, rd) {
                    (Some(a), Some(d)) => nl.add_read_port(mem, a, d),
                    (None, None) => break,
                    _ => return Err(lx.err(format!("mem read port {i} incomplete"))),
                }
            }
            for i in 0.. {
                let (wa, wd, we) = (
                    pin(&format!("WA{i}")),
                    pin(&format!("WD{i}")),
                    pin(&format!("WE{i}")),
                );
                match (wa, wd, we) {
                    (Some(a), Some(d), Some(e)) => {
                        let e = single(e, lx, "WE")?;
                        nl.add_write_port(mem, a, d, e);
                    }
                    (None, None, None) => break,
                    _ => return Err(lx.err(format!("mem write port {i} incomplete"))),
                }
            }
        }
        other => {
            return Err(lx.err(format!("unsupported cell '{other}'")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write::write_netlist;
    use symsim_netlist::RtlBuilder;

    #[test]
    fn parses_hand_written_netlist() {
        let src = r"
            // a tiny gate-level netlist
            module top (a, b, y);
              input a, b;
              output y;
              wire n1;
              nand g0 (n1, a, b);
              not g1 (y, n1);
            endmodule
        ";
        let nl = parse_netlist(src).unwrap();
        assert_eq!(nl.name, "top");
        assert_eq!(nl.gate_count(), 2);
        assert_eq!(nl.inputs().len(), 2);
        assert_eq!(nl.outputs().len(), 1);
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn parses_vectors_and_cells() {
        let src = r"
            module v (d, q);
              input [1:0] d;
              output [1:0] q;
              wire s;
              const1 c0 (.Y(s));
              mux2 m0 (.Y(q[0]), .S(s), .A(d[0]), .B(d[1]));
              dff #(.INIT(1'b0)) f0 (.D(d[1]), .Q(q[1]));
            endmodule
        ";
        let nl = parse_netlist(src).unwrap();
        assert_eq!(nl.gate_count(), 2);
        assert_eq!(nl.dff_count(), 1);
        assert_eq!(nl.dffs()[0].init, Logic::Zero);
    }

    #[test]
    fn round_trips_builder_output() {
        let mut b = RtlBuilder::new("rt");
        let x = b.input("x", 4);
        let y = b.input("y", 4);
        let s = b.add(&x, &y);
        let r = b.reg("acc", 4, 0);
        let q = r.q.clone();
        let nxt = b.xor(&q, &s);
        b.drive_reg(r, &nxt);
        let mh = b.memory("scratch", 8, 4);
        let rd = b.mem_read(mh, &q.slice(0, 3));
        let we = b.one();
        b.mem_write(mh, &q.slice(0, 3), &rd, we);
        b.output("out", &q);
        let nl = b.finish().unwrap();

        let text = write_netlist(&nl);
        let back = parse_netlist(&text).unwrap();
        assert_eq!(back.gate_count(), nl.gate_count());
        assert_eq!(back.dff_count(), nl.dff_count());
        assert_eq!(back.memories().len(), 1);
        assert_eq!(back.memories()[0].depth, 8);
        assert_eq!(back.memories()[0].read_ports.len(), 1);
        assert_eq!(back.memories()[0].write_ports.len(), 1);
        assert_eq!(back.inputs().len(), nl.inputs().len());
        assert_eq!(back.outputs().len(), nl.outputs().len());
        assert!(back.validate().is_ok());
    }

    #[test]
    fn parses_assign_expressions() {
        let src = r"
            module rtl (a, b, c, sel, y);
              input a, b, c, sel;
              output y;
              wire t;
              assign t = ~(a & b) ^ (c | 1'b0);
              assign y = sel ? t : ~c;
            endmodule
        ";
        let nl = parse_netlist(src).unwrap();
        assert!(nl.validate().is_ok());
        // ~, &, ^, |, const0, mux, ~, plus two assign buffers
        assert!(nl.gate_count() >= 8, "{}", nl.gate_count());
        use crate::write::write_netlist;
        // elaborated output is structural and round-trips
        let back = parse_netlist(&write_netlist(&nl)).unwrap();
        assert_eq!(back.gate_count(), nl.gate_count());
    }

    #[test]
    fn assign_respects_precedence() {
        // a | b & c parses as a | (b & c)
        let src = "
            module p (a, b, c, y);
              input a, b, c;
              output y;
              assign y = a | b & c;
            endmodule
        ";
        let nl = parse_netlist(src).unwrap();
        // top gate driving the assign buffer must be the OR
        let y = nl.find_net("y").unwrap();
        let buf = nl
            .gates()
            .iter()
            .find(|g| g.output == y)
            .expect("assign buffer");
        let top = nl
            .gates()
            .iter()
            .find(|g| g.output == buf.inputs[0])
            .expect("expression root");
        assert_eq!(top.kind, CellKind::Or2);
    }

    #[test]
    fn assign_rejects_malformed() {
        assert!(parse_netlist("module m (y); output y; assign y = ;endmodule").is_err());
        assert!(parse_netlist("module m (y); output y; assign y = a ?; endmodule").is_err());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "module m (a);\n input a;\n bogus g0 (a);\nendmodule";
        let err = parse_netlist(src).unwrap_err();
        assert!(err.line >= 3, "line {}", err.line);
        assert!(err.to_string().contains("unsupported cell"));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let src = "module m (a, y);\n input a;\n output y;\n nand g0 (y, a);\nendmodule";
        assert!(parse_netlist(src).is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let src = "/* block\ncomment */ module m (a); // trailing\n input a;\nendmodule";
        assert!(parse_netlist(src).is_ok());
    }
}
