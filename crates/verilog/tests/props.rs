//! Property-based round-trip: any valid netlist written as structural
//! Verilog parses back into a behaviourally identical design.

use proptest::prelude::*;
use symsim_logic::{Value, Word};
use symsim_netlist::generator::arb_netlist;
use symsim_sim::{SimConfig, Simulator};
use symsim_verilog::{parse_blif, parse_netlist, write_blif, write_netlist};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip_preserves_structure(nl in arb_netlist(40)) {
        let text = write_netlist(&nl);
        let back = parse_netlist(&text).expect("reparses");
        prop_assert_eq!(back.gate_count(), nl.gate_count());
        prop_assert_eq!(back.dff_count(), nl.dff_count());
        prop_assert_eq!(back.inputs().len(), nl.inputs().len());
        prop_assert_eq!(back.outputs().len(), nl.outputs().len());
        prop_assert!(back.validate().is_ok());
    }

    /// Behavioural equality: both netlists driven with the same random
    /// stimulus produce identical output traces (nets resolved by name).
    #[test]
    fn round_trip_preserves_behaviour(
        nl in arb_netlist(30),
        stimulus in prop::collection::vec(any::<u64>(), 1..8),
    ) {
        let text = write_netlist(&nl);
        let back = parse_netlist(&text).expect("reparses");

        // the writer orders ports by name, so resolve ports by name in
        // both designs to compare behaviour
        let by_name = |netlist: &symsim_netlist::Netlist, ports: &[symsim_netlist::NetId]| {
            let mut names: Vec<String> = ports
                .iter()
                .map(|&n| netlist.net_name(n).to_string())
                .collect();
            names.sort();
            names.dedup();
            names
        };
        let input_names = by_name(&nl, nl.inputs());
        let output_names = by_name(&nl, nl.outputs());

        let run = |netlist: &symsim_netlist::Netlist| -> Vec<Word> {
            let mut sim = Simulator::new(netlist, SimConfig::default());
            let inputs: Vec<_> = input_names
                .iter()
                .map(|n| netlist.find_net(n).expect("input"))
                .collect();
            let outputs: Vec<_> = output_names
                .iter()
                .map(|n| netlist.find_net(n).expect("output"))
                .collect();
            let mut trace = Vec::new();
            for &s in &stimulus {
                for (i, &net) in inputs.iter().enumerate() {
                    sim.poke(net, Value::from_bool(s >> (i % 64) & 1 == 1));
                }
                sim.step_cycle();
                trace.push(sim.read_bus(&outputs));
            }
            trace
        };

        prop_assert_eq!(run(&nl), run(&back));
    }

    /// BLIF round trip preserves behaviour too: the `.names` covers
    /// re-elaborate into different gates, but the function is identical.
    #[test]
    fn blif_round_trip_preserves_behaviour(
        nl in arb_netlist(25),
        stimulus in prop::collection::vec(any::<u64>(), 1..8),
    ) {
        let text = write_blif(&nl).expect("no memories in generated netlists");
        let back = parse_blif(&text).expect("reparses");
        prop_assert!(back.validate().is_ok());
        prop_assert_eq!(back.dff_count(), nl.dff_count());

        let by_name = |netlist: &symsim_netlist::Netlist, ports: &[symsim_netlist::NetId]| {
            let mut names: Vec<String> = ports
                .iter()
                .map(|&n| netlist.net_name(n).to_string())
                .collect();
            names.sort();
            names.dedup();
            names
        };
        let input_names = by_name(&nl, nl.inputs());
        let output_names = by_name(&nl, nl.outputs());
        let run = |netlist: &symsim_netlist::Netlist| -> Vec<Word> {
            let mut sim = Simulator::new(netlist, SimConfig::default());
            let inputs: Vec<_> = input_names
                .iter()
                .map(|n| netlist.find_net(n).expect("input"))
                .collect();
            let outputs: Vec<_> = output_names
                .iter()
                .map(|n| netlist.find_net(n).expect("output"))
                .collect();
            let mut trace = Vec::new();
            for &s in &stimulus {
                for (i, &net) in inputs.iter().enumerate() {
                    sim.poke(net, Value::from_bool(s >> (i % 64) & 1 == 1));
                }
                sim.step_cycle();
                trace.push(sim.read_bus(&outputs));
            }
            trace
        };
        prop_assert_eq!(run(&nl), run(&back));
    }
}
