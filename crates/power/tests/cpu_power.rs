//! Power analyses on a real CPU: peak/energy bounds, gating candidates,
//! and timing slack from co-analysis of omsp16 benchmarks.

use symsim_core::{CoAnalysis, CoAnalysisConfig};
use symsim_cpu::omsp16;
use symsim_power::{gating_candidates, switching_weights, timing_slack, PowerReport};

fn analyze(bench_name: &str) -> (symsim_cpu::Cpu, symsim_core::CoAnalysisReport) {
    let cpu = omsp16::build();
    let bench = omsp16::benchmark(bench_name);
    let program = omsp16::assemble(bench.source).expect("assembles");
    let config = CoAnalysisConfig {
        max_cycles_per_segment: bench.max_cycles,
        activity_weights: Some(switching_weights(&cpu.netlist)),
        ..CoAnalysisConfig::default()
    };
    let analysis = CoAnalysis::new(&cpu.netlist, cpu.interface(), config).expect("valid config");
    let report = analysis.run(|sim| cpu.prepare_symbolic(sim, &program, &bench.data));
    (cpu, report)
}

#[test]
fn peak_power_bounds_are_consistent() {
    let (_, report) = analyze("div");
    let power = PowerReport::from_report(&report).expect("activity collected");
    assert!(power.peak_cycle_energy > 0.0);
    assert!(power.avg_cycle_energy > 0.0);
    assert!(power.peak_cycle_energy >= power.avg_cycle_energy);
    assert!(power.peak_to_avg() >= 1.0);
    assert_eq!(power.cycles, report.simulated_cycles);
}

#[test]
fn multiplier_workload_draws_more_peak_power() {
    let (_, div) = analyze("div");
    let (_, mult) = analyze("mult");
    let p_div = PowerReport::from_report(&div).expect("activity");
    let p_mult = PowerReport::from_report(&mult).expect("activity");
    // mult exercises the 16x16 array multiplier every load of the product
    assert!(
        p_mult.peak_cycle_energy > p_div.peak_cycle_energy,
        "mult peak {} should exceed div peak {}",
        p_mult.peak_cycle_energy,
        p_div.peak_cycle_energy
    );
}

#[test]
fn gating_candidates_exist_between_pruned_and_busy() {
    let (cpu, report) = analyze("div");
    let activity = report.activity.as_ref().expect("collected");
    let candidates = gating_candidates(&cpu.netlist, &report.profile, activity, 0.5);
    assert!(
        !candidates.is_empty(),
        "some exercisable gates must be mostly idle"
    );
    // candidates are exercisable (not prunable) yet rarely active
    for c in candidates.iter().take(20) {
        assert!(c.duty > 0.0 && c.duty < 0.5);
    }
}

#[test]
fn unexercised_logic_leaves_timing_slack() {
    let (cpu, report) = analyze("div");
    let slack = timing_slack(&cpu.netlist, &report.profile);
    assert!(slack.design_depth > 0);
    assert!(slack.exercised_depth <= slack.design_depth);
    // div never touches the multiplier array, the deepest cone in omsp16
    assert!(
        slack.slack_levels() > 0,
        "expected voltage-scaling headroom: {slack:?}"
    );
}
