//! # symsim-power
//!
//! The application-specific power analyses prior work builds on symbolic
//! hardware-software co-analysis (paper §1):
//!
//! * **peak power and energy requirements** (Cherupalli et al., TOCS'17) —
//!   because co-analysis covers *every* execution for *every* input, the
//!   maximum per-cycle switching activity over all explored paths is an
//!   input-independent peak-power bound, and the totals bound energy;
//! * **module-oblivious power gating** (HPCA'17) — per-gate toggle duty
//!   identifies gates that are exercisable yet almost always idle:
//!   candidates for gating even though they cannot be pruned outright;
//! * **dynamic-timing-slack voltage scaling** (ISCA'16 / DAC'18) — if the
//!   application never exercises the deepest logic levels of the design,
//!   the unexercised depth is timing headroom for voltage overscaling.
//!
//! The entry point is [`PowerReport::from_report`], fed by a
//! [`symsim_core::CoAnalysisReport`] produced with
//! `CoAnalysisConfig::activity_weights = Some(switching_weights(&netlist))`.
//!
//! Energies are in abstract *switching-energy units* (driver area + load);
//! scale by your library's per-unit energy to get joules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use symsim_core::CoAnalysisReport;
use symsim_netlist::{CombNode, Driver, GateId, Netlist};
use symsim_sim::{ActivityStats, ToggleProfile};

/// Switching energy of a D flip-flop output in NAND2-equivalent units.
const DFF_WEIGHT: f64 = 4.67;
/// Switching energy attributed to a primary input or memory data pin.
const PIN_WEIGHT: f64 = 0.5;
/// Load added per fanout connection.
const LOAD_WEIGHT: f64 = 0.25;

/// Per-net switching weights derived from the netlist: the driver cell's
/// area (its internal switching energy) plus a load term per fanout.
///
/// # Example
///
/// ```
/// use symsim_netlist::RtlBuilder;
///
/// let mut b = RtlBuilder::new("d");
/// let a = b.input("a", 2);
/// let y = b.not(&a);
/// b.output("y", &y);
/// let nl = b.finish().expect("valid");
/// let w = symsim_power::switching_weights(&nl);
/// assert_eq!(w.len(), nl.net_count());
/// assert!(w.iter().all(|&x| x > 0.0));
/// ```
pub fn switching_weights(netlist: &Netlist) -> Vec<f64> {
    let drivers = netlist.drivers();
    let fanout = netlist.fanout_map();
    (0..netlist.net_count())
        .map(|i| {
            let base = match drivers[i] {
                Some(Driver::Gate(g)) => netlist.gate(g).kind.area().max(0.1),
                Some(Driver::Dff(_)) => DFF_WEIGHT,
                Some(Driver::MemoryRead { .. }) | Some(Driver::Input) | None => PIN_WEIGHT,
            };
            base + LOAD_WEIGHT * fanout[i].len() as f64
        })
        .collect()
}

/// Application-specific power/energy bounds (TOCS'17 analysis).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Input-independent peak per-cycle switching energy over all paths.
    pub peak_cycle_energy: f64,
    /// Average per-cycle switching energy across all simulated cycles.
    pub avg_cycle_energy: f64,
    /// Total switching energy over all simulated cycles (an energy bound
    /// proportional to the application's execution length).
    pub total_energy: f64,
    /// Cycles observed.
    pub cycles: u64,
}

impl PowerReport {
    /// Extracts the power bounds from a co-analysis report.
    ///
    /// Returns `None` if the analysis ran without activity weights.
    pub fn from_report(report: &CoAnalysisReport) -> Option<PowerReport> {
        let a = report.activity.as_ref()?;
        Some(PowerReport {
            peak_cycle_energy: a.peak_cycle_energy,
            avg_cycle_energy: a.avg_cycle_energy(),
            total_energy: a.total_energy,
            cycles: a.cycles,
        })
    }

    /// Peak-to-average ratio — how bursty the application's power draw is.
    pub fn peak_to_avg(&self) -> f64 {
        if self.avg_cycle_energy == 0.0 {
            0.0
        } else {
            self.peak_cycle_energy / self.avg_cycle_energy
        }
    }
}

impl std::fmt::Display for PowerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "peak {:.1} / avg {:.1} energy units per cycle (x{:.2}), total {:.0} over {} cycles",
            self.peak_cycle_energy,
            self.avg_cycle_energy,
            self.peak_to_avg(),
            self.total_energy,
            self.cycles
        )
    }
}

/// A power-gating candidate: an exercisable gate that toggles rarely.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GatingCandidate {
    /// The gate.
    pub gate: GateId,
    /// Fraction of cycles in which its output toggled.
    pub duty: f64,
    /// Its cell area (the gating payoff).
    pub area: f64,
}

/// Gates that co-analysis marks exercisable but whose outputs toggled in
/// fewer than `duty_threshold` of all simulated cycles — the
/// module-oblivious power-gating candidates of HPCA'17. (Gates that never
/// toggle at all belong to bespoke pruning instead and are excluded.)
pub fn gating_candidates(
    netlist: &Netlist,
    profile: &ToggleProfile,
    activity: &ActivityStats,
    duty_threshold: f64,
) -> Vec<GatingCandidate> {
    let mut out: Vec<GatingCandidate> = netlist
        .iter_gates()
        .filter(|(_, g)| profile.is_toggled(g.output))
        .map(|(id, g)| GatingCandidate {
            gate: id,
            duty: activity.duty(g.output),
            area: g.kind.area(),
        })
        .filter(|c| c.duty > 0.0 && c.duty < duty_threshold)
        .collect();
    out.sort_by(|a, b| a.duty.partial_cmp(&b.duty).expect("duty is finite"));
    out
}

/// Application-specific timing-slack estimate (ISCA'16 / DAC'18): logic
/// depth is a first-order proxy for path delay, so unexercised depth is
/// voltage-overscaling headroom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingSlack {
    /// Deepest combinational level in the full design.
    pub design_depth: u32,
    /// Deepest level among gates the application can exercise.
    pub exercised_depth: u32,
}

impl TimingSlack {
    /// Levels of slack the application never uses.
    pub fn slack_levels(&self) -> u32 {
        self.design_depth.saturating_sub(self.exercised_depth)
    }

    /// Fraction of the critical depth left unexercised (0.0 = none).
    pub fn headroom(&self) -> f64 {
        if self.design_depth == 0 {
            0.0
        } else {
            self.slack_levels() as f64 / self.design_depth as f64
        }
    }
}

/// Computes design vs exercised logic depth from a toggle profile.
///
/// The design depth is the longest combinational chain anywhere; the
/// exercised depth is the longest chain consisting *entirely* of gates the
/// application exercises — an unexercised (constant-output) gate breaks
/// the chain, because no transition propagates through it, so the path it
/// anchors can never be timing-critical for this application.
///
/// # Panics
///
/// Panics if the netlist has a combinational cycle.
pub fn timing_slack(netlist: &Netlist, profile: &ToggleProfile) -> TimingSlack {
    let order = netlist
        .comb_topo_order()
        .expect("netlist has a combinational cycle");
    let nodes = netlist.comb_nodes();
    let index_of: std::collections::HashMap<CombNode, usize> =
        nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let drivers = netlist.drivers();
    let mut level = vec![0u32; nodes.len()]; // full-design chain length
    let mut active = vec![0u32; nodes.len()]; // exercised-only chain length
    let mut design_depth = 0;
    let mut exercised_depth = 0;
    for node in order {
        let idx = index_of[&node];
        let (ins, outs): (Vec<_>, Vec<_>) = match node {
            CombNode::Gate(g) => {
                let gate = netlist.gate(g);
                (gate.inputs.clone(), vec![gate.output])
            }
            CombNode::MemRead { mem, port } => {
                let rp = &netlist.memories()[mem.0 as usize].read_ports[port];
                (rp.addr.clone(), rp.data.clone())
            }
        };
        let mut l = 0;
        let mut a = 0;
        for pin in ins {
            let producer = match drivers[pin.0 as usize] {
                Some(Driver::Gate(g)) => index_of.get(&CombNode::Gate(g)),
                Some(Driver::MemoryRead { mem, port }) => {
                    index_of.get(&CombNode::MemRead { mem, port })
                }
                _ => None,
            };
            if let Some(&p) = producer {
                l = l.max(level[p] + 1);
                a = a.max(active[p] + 1);
            }
        }
        let exercised = outs.iter().any(|&o| profile.is_toggled(o));
        level[idx] = l;
        active[idx] = if exercised { a } else { 0 };
        design_depth = design_depth.max(l);
        if exercised {
            exercised_depth = exercised_depth.max(active[idx]);
        }
    }
    TimingSlack {
        design_depth,
        exercised_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsim_logic::Value;
    use symsim_netlist::RtlBuilder;
    use symsim_sim::{SimConfig, Simulator};

    /// A design with a shallow exercised half and a deep idle half.
    fn two_depth_design() -> Netlist {
        let mut b = RtlBuilder::new("depths");
        let a = b.input("a", 4);
        // shallow: one inverter layer
        let shallow = b.not(&a);
        b.output("shallow", &shallow);
        // deep: a multiplier cone fed by constants (never toggles)
        let c0 = b.const_word(0, 4);
        let deep = b.mul(&c0, &c0);
        b.output("deep", &deep);
        b.finish().expect("valid")
    }

    #[test]
    fn weights_cover_every_net() {
        let nl = two_depth_design();
        let w = switching_weights(&nl);
        assert_eq!(w.len(), nl.net_count());
        assert!(w.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn slack_reflects_unexercised_depth() {
        let nl = two_depth_design();
        let mut sim = Simulator::new(&nl, SimConfig::default());
        let nets: Vec<_> = (0..4)
            .map(|i| nl.find_net(&format!("a[{i}]")).expect("net"))
            .collect();
        sim.poke_bus(&nets, &symsim_logic::Word::from_u64(0, 4));
        sim.settle();
        sim.arm_toggle_observer();
        sim.poke_bus(&nets, &symsim_logic::Word::from_u64(0xf, 4));
        sim.settle();
        let profile = sim.take_toggle_profile().expect("armed");
        let slack = timing_slack(&nl, &profile);
        assert!(
            slack.design_depth > slack.exercised_depth,
            "{slack:?} should show slack from the idle multiplier"
        );
        assert!(slack.headroom() > 0.3, "{slack:?}");
    }

    #[test]
    fn gating_candidates_sorted_by_duty() {
        let mut b = RtlBuilder::new("g");
        let a = b.input("a", 1);
        let r = b.reg("divider", 2, 0);
        let q = r.q.clone();
        let one2 = b.const_word(1, 2);
        let nxt = b.add(&q, &one2);
        b.drive_reg(r, &nxt);
        // y toggles every cycle; z toggles every other cycle
        let y = b.xor1(a.bit(0), q.bit(0));
        let z = b.xor1(a.bit(0), q.bit(1));
        let outs = symsim_netlist::Bus::from_nets(vec![y, z]);
        b.output("o", &outs);
        let nl = b.finish().expect("valid");
        let mut sim = Simulator::new(&nl, SimConfig::default());
        sim.poke(nl.find_net("a").expect("a"), Value::ZERO);
        sim.settle();
        sim.arm_toggle_observer();
        sim.attach_activity_observer(switching_weights(&nl));
        for _ in 0..32 {
            sim.step_cycle();
        }
        let profile = sim.take_toggle_profile().expect("armed");
        let activity = sim.take_activity().expect("attached");
        let candidates = gating_candidates(&nl, &profile, &activity, 0.9);
        assert!(!candidates.is_empty());
        for pair in candidates.windows(2) {
            assert!(pair[0].duty <= pair[1].duty, "sorted ascending by duty");
        }
    }

    #[test]
    fn power_report_math() {
        let report = PowerReport {
            peak_cycle_energy: 10.0,
            avg_cycle_energy: 2.5,
            total_energy: 250.0,
            cycles: 100,
        };
        assert_eq!(report.peak_to_avg(), 4.0);
        assert!(report.to_string().contains("x4.00"));
    }
}
