//! Run-trace subsystem: causal NDJSON traces of a co-analysis run.
//!
//! A [`TraceSink`] records the events that make the path-lineage tree
//! reconstructible — path starts, forks (parent id, PC, forked signals),
//! CSM cover/widen decisions, path outcomes with per-phase timing — as one
//! JSON object per line. Writes go through per-worker buffered shards:
//! the hot path appends to the worker's own buffer under an uncontended
//! mutex and only drains to the shared writer opportunistically
//! (`try_lock`); a worker never blocks on another worker's flush. When a
//! shard is full *and* the writer is busy, the record is dropped and
//! counted rather than stalling simulation (drop-counted backpressure).
//! [`TraceSink::finish`] merges every shard, appends a `summary` record,
//! and returns the totals.
//!
//! Timestamps are microseconds from a single [`Instant`] taken at sink
//! creation — monotonic and shared by every worker. No timestamp is taken
//! anywhere unless a sink is installed.
//!
//! Record taxonomy (`"ev"` field): `meta`, `span_open`, `span_close`,
//! `path_start`, `fork`, `cohort`, `csm`, `path_end`, `coverage`,
//! `cover_first`, `summary`. Schema:
//! `docs/schema/trace.schema.json`. The same module reads traces back
//! ([`Trace`]) and derives the lineage tree and hot-spot aggregates the
//! `symsim trace` subcommand prints.

use std::cell::Cell;
use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::{JsonObject, JsonValue};

/// Drain a shard to the writer once it holds this many bytes.
const FLUSH_BYTES: usize = 64 * 1024;
/// Hard per-shard cap: beyond this, records are dropped (and counted) if
/// the shared writer cannot be taken without blocking.
const SHARD_CAP_BYTES: usize = 4 * 1024 * 1024;

/// Totals returned by [`TraceSink::finish`] and recorded in the trailing
/// `summary` record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Records successfully buffered (everything except drops; the
    /// `summary` record itself is not counted).
    pub events: u64,
    /// Records dropped under backpressure.
    pub dropped: u64,
    /// Bytes written to the output, excluding the summary line.
    pub bytes: u64,
}

struct SinkOut {
    w: Box<dyn Write + Send>,
    bytes: u64,
}

impl SinkOut {
    fn drain(&mut self, buf: &mut String) {
        if !buf.is_empty() {
            self.bytes += buf.len() as u64;
            let _ = self.w.write_all(buf.as_bytes());
            buf.clear();
        }
    }
}

/// Sharded NDJSON trace writer. See the module docs for the design.
pub struct TraceSink {
    origin: Instant,
    shards: Box<[Mutex<String>]>,
    out: Mutex<SinkOut>,
    events: AtomicU64,
    dropped: AtomicU64,
    finished: AtomicBool,
    done: Mutex<Option<TraceStats>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("shards", &self.shards.len())
            .field("events", &self.events.load(Ordering::Relaxed))
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl TraceSink {
    /// Creates a sink with one buffer shard per worker (at least one)
    /// writing merged NDJSON to `out`.
    pub fn new(workers: usize, out: Box<dyn Write + Send>) -> TraceSink {
        TraceSink {
            origin: Instant::now(),
            shards: (0..workers.max(1))
                .map(|_| Mutex::new(String::new()))
                .collect(),
            out: Mutex::new(SinkOut { w: out, bytes: 0 }),
            events: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            finished: AtomicBool::new(false),
            done: Mutex::new(None),
        }
    }

    /// Creates a sink writing to a freshly created file at `path`.
    pub fn to_file(path: &str, workers: usize) -> std::io::Result<Arc<TraceSink>> {
        let f = std::fs::File::create(path)?;
        Ok(Arc::new(TraceSink::new(
            workers,
            Box::new(std::io::BufWriter::new(f)),
        )))
    }

    /// Microseconds since sink creation — the `ts_us` of every record.
    #[inline]
    pub fn ts_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Emits one record: `{"ev":ev,"ts_us":…,"w":worker,…fill…}`. `worker`
    /// is the emitting worker's index, or -1 for the coordinating thread.
    /// No-op after [`TraceSink::finish`].
    pub fn emit(&self, worker: i64, ev: &str, fill: impl FnOnce(&mut JsonObject)) {
        if self.finished.load(Ordering::Relaxed) {
            return;
        }
        let ts = self.ts_us();
        let mut o = JsonObject::new();
        o.str("ev", ev).u64("ts_us", ts).i64("w", worker);
        fill(&mut o);
        self.push_line(worker, &o.finish());
    }

    /// The leading `meta` record: trace format version, design name,
    /// worker count.
    pub fn emit_meta(&self, design: &str, workers: usize) {
        self.emit(-1, "meta", |o| {
            o.u64("version", 1)
                .str("design", design)
                .u64("workers", workers as u64);
        });
    }

    fn push_line(&self, worker: i64, line: &str) {
        let idx = if worker < 0 {
            0
        } else {
            worker as usize % self.shards.len()
        };
        let mut buf = self.shards[idx].lock().unwrap();
        if buf.len() + line.len() + 1 > SHARD_CAP_BYTES {
            match self.out.try_lock() {
                Ok(mut out) => out.drain(&mut buf),
                Err(_) => {
                    // writer busy and shard full: drop rather than stall
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
        buf.push_str(line);
        buf.push('\n');
        self.events.fetch_add(1, Ordering::Relaxed);
        if buf.len() >= FLUSH_BYTES {
            if let Ok(mut out) = self.out.try_lock() {
                out.drain(&mut buf);
            }
        }
    }

    /// Number of records dropped under backpressure so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drains every shard (blocking), appends the `summary` record, and
    /// flushes. Idempotent: later calls return the same stats and later
    /// [`TraceSink::emit`]s are ignored.
    pub fn finish(&self) -> TraceStats {
        let mut done = self.done.lock().unwrap();
        if let Some(stats) = *done {
            return stats;
        }
        self.finished.store(true, Ordering::SeqCst);
        let ts = self.ts_us();
        let mut out = self.out.lock().unwrap();
        for shard in self.shards.iter() {
            out.drain(&mut shard.lock().unwrap());
        }
        let stats = TraceStats {
            events: self.events.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            bytes: out.bytes,
        };
        let mut o = JsonObject::new();
        o.str("ev", "summary")
            .u64("ts_us", ts)
            .i64("w", -1)
            .u64("events", stats.events)
            .u64("dropped", stats.dropped)
            .u64("bytes", stats.bytes);
        let line = o.finish();
        let _ = out.w.write_all(line.as_bytes());
        let _ = out.w.write_all(b"\n");
        let _ = out.w.flush();
        *done = Some(stats);
        stats
    }
}

impl Drop for TraceSink {
    fn drop(&mut self) {
        // a sink dropped without finish() still persists what it buffered
        if self.done.get_mut().map_or(true, |d| d.is_none()) {
            self.finish();
        }
    }
}

// ---------------------------------------------------------------------------
// Global sink installation (used by `trace::SpanGuard` so span open/close
// reach the trace without threading the sink through every call site).
// ---------------------------------------------------------------------------

static GLOBAL: Mutex<Option<Arc<TraceSink>>> = Mutex::new(None);
static GLOBAL_ON: AtomicBool = AtomicBool::new(false);

/// Serializes tests that install the process-global sink.
#[cfg(test)]
pub(crate) static TEST_GLOBAL_LOCK: Mutex<()> = Mutex::new(());

thread_local! {
    /// The worker index records from this thread are attributed to; -1
    /// (the coordinating thread) until a worker loop claims an id.
    static THREAD_WORKER: Cell<i64> = const { Cell::new(-1) };
}

/// Installs `sink` as the process-global trace sink.
pub fn install_global(sink: &Arc<TraceSink>) {
    *GLOBAL.lock().unwrap() = Some(Arc::clone(sink));
    GLOBAL_ON.store(true, Ordering::Release);
}

/// Removes the global sink (does not finish it).
pub fn clear_global() {
    GLOBAL_ON.store(false, Ordering::Release);
    *GLOBAL.lock().unwrap() = None;
}

/// Whether a global sink is installed: one relaxed load, so hot paths can
/// skip timestamping entirely when tracing is off.
#[inline]
pub fn global_enabled() -> bool {
    GLOBAL_ON.load(Ordering::Relaxed)
}

/// Runs `f` against the global sink if one is installed.
pub fn with_global(f: impl FnOnce(&TraceSink)) {
    if !global_enabled() {
        return;
    }
    let guard = GLOBAL.lock().unwrap();
    if let Some(sink) = guard.as_ref() {
        f(sink);
    }
}

/// Tags the current thread's records with worker index `w` (workers call
/// this once at loop start; untagged threads record as -1).
pub fn set_thread_worker(w: i64) {
    THREAD_WORKER.with(|c| c.set(w));
}

/// The current thread's worker tag.
pub fn thread_worker() -> i64 {
    THREAD_WORKER.with(|c| c.get())
}

// ---------------------------------------------------------------------------
// Reading traces back
// ---------------------------------------------------------------------------

/// How a traced path ended. Mirrors the explorer's segment outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Ran to its cycle budget's natural end (program finished).
    Finished,
    /// Skipped: the CSM already covered its halt state.
    Covered,
    /// Forked children at a nondeterministic halt.
    Split,
    /// Global path budget exhausted before the halt could fork.
    Budget,
}

impl Outcome {
    /// Stable name used in `path_end` records.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Finished => "finished",
            Outcome::Covered => "covered",
            Outcome::Split => "split",
            Outcome::Budget => "budget",
        }
    }

    /// Parses a [`Outcome::name`] back.
    pub fn from_name(s: &str) -> Option<Outcome> {
        match s {
            "finished" => Some(Outcome::Finished),
            "covered" => Some(Outcome::Covered),
            "split" => Some(Outcome::Split),
            "budget" => Some(Outcome::Budget),
            _ => None,
        }
    }
}

/// A CSM decision kind in a `csm` record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsmEvent {
    /// The halt state was covered by a stored conservative state; the
    /// path is skipped.
    Cover,
    /// The halt state widened (or seeded) the stored state for its PC.
    Widen,
    /// An adaptive-policy PC entry crossed its demotion threshold and
    /// collapsed its multi-state slots into one single-merge uber-state.
    Demote,
    /// A queued split child was killed at dequeue: a conservative state
    /// formed after its fork already covered its start state, so it was
    /// never simulated (no `path_start`/`path_end` records exist for it).
    Kill,
}

impl CsmEvent {
    /// Stable name used in `csm` records.
    pub fn name(self) -> &'static str {
        match self {
            CsmEvent::Cover => "cover",
            CsmEvent::Widen => "widen",
            CsmEvent::Demote => "demote",
            CsmEvent::Kill => "kill",
        }
    }

    /// Parses a [`CsmEvent::name`] back.
    pub fn from_name(s: &str) -> Option<CsmEvent> {
        match s {
            "cover" => Some(CsmEvent::Cover),
            "widen" => Some(CsmEvent::Widen),
            "demote" => Some(CsmEvent::Demote),
            "kill" => Some(CsmEvent::Kill),
            _ => None,
        }
    }
}

/// Per-segment phase timing carried on a `path_end` record, µs. Engine
/// phases (`settle`, `batch`, `event`) are zero unless engine profiling
/// was enabled for the run. `settle` is included in `exec`; `batch` and
/// `event` are included in `settle`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentPhases {
    /// Snapshot restore when the worker claimed the path.
    pub restore_us: u64,
    /// Force application plus the simulation run loop.
    pub exec_us: u64,
    /// Snapshot save at the halt (zero when the path did not halt).
    pub save_us: u64,
    /// CSM lock + observe (subset check and any widening).
    pub csm_us: u64,
    /// Engine settle time within exec.
    pub settle_us: u64,
    /// Batched level-tape evaluation within settle.
    pub batch_us: u64,
    /// Scalar event-driven evaluation within settle.
    pub event_us: u64,
    /// Scheduler wait before this segment was claimed.
    pub wait_us: u64,
    /// Whole-segment wall time (claim to outcome).
    pub seg_us: u64,
}

/// One parsed trace record. Field meanings are shared across variants:
/// `ts_us` is microseconds from sink creation, `w` the emitting worker
/// (-1 = coordinating thread), `path` a path id.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum TraceRecord {
    /// Leading record: format version, design, worker count.
    Meta {
        ts_us: u64,
        version: u64,
        design: String,
        workers: u64,
    },
    /// A [`crate::trace::span`] opened.
    SpanOpen {
        ts_us: u64,
        w: i64,
        name: String,
        depth: u64,
    },
    /// The matching span closed after `dur_us`.
    SpanClose {
        ts_us: u64,
        w: i64,
        name: String,
        depth: u64,
        dur_us: u64,
    },
    /// A worker began simulating path `path` at architectural cycle
    /// `cycle`.
    PathStart {
        ts_us: u64,
        w: i64,
        path: u64,
        cycle: u64,
    },
    /// Path `parent` forked at `pc`: children get contiguous ids
    /// `first..first+n`. Child `first+i` takes branch combination `i`
    /// over `signals` (bit `j` of `i` is the value forced on
    /// `signals[j]`); `want` is the combination count before the path
    /// budget capped it at `n`.
    Fork {
        ts_us: u64,
        w: i64,
        parent: u64,
        pc: String,
        first: u64,
        n: u64,
        want: u64,
        signals: Vec<u64>,
    },
    /// Sibling paths `members` (ids `first..first+n`) were packed into one
    /// lane cohort and simulated together in a single bit-plane pass
    /// (cohort eval mode). Per-path `path_start`/`path_end` records still
    /// bracket each member's trajectory.
    Cohort {
        ts_us: u64,
        w: i64,
        first: u64,
        n: u64,
        members: Vec<u64>,
    },
    /// A CSM decision for path `path` halting at `pc`.
    Csm {
        ts_us: u64,
        w: i64,
        path: u64,
        pc: String,
        kind: CsmEvent,
        dur_us: u64,
    },
    /// Path `path` ended with `outcome` after `cycles` simulated cycles,
    /// having spawned `children` children.
    PathEnd {
        ts_us: u64,
        w: i64,
        path: u64,
        outcome: Outcome,
        cycles: u64,
        children: u64,
        phases: SegmentPhases,
    },
    /// A point on the coverage-over-time curve (attributed runs only):
    /// after `paths` segments and `cycles` simulated cycles, `covered` of
    /// `total` nets had toggled.
    Coverage {
        ts_us: u64,
        w: i64,
        paths: u64,
        cycles: u64,
        covered: u64,
        total: u64,
    },
    /// The first-exercise verdict for one net (attributed runs only,
    /// emitted at end of run in ascending net order): path `path` first
    /// toggled net `net` at cycle `cycle`; `pc` is the winning path's fork
    /// key, or the synthetic `"root"`/`"reset"` markers.
    CoverFirst {
        ts_us: u64,
        w: i64,
        net: u64,
        path: u64,
        cycle: u64,
        pc: String,
    },
    /// Trailing totals written by [`TraceSink::finish`].
    Summary {
        ts_us: u64,
        events: u64,
        dropped: u64,
        bytes: u64,
    },
}

fn req_u64(o: &JsonValue, key: &str, ev: &str) -> Result<u64, String> {
    o.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("{ev}: missing or non-integer {key:?}"))
}

fn req_str(o: &JsonValue, key: &str, ev: &str) -> Result<String, String> {
    o.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("{ev}: missing or non-string {key:?}"))
}

fn opt_u64(o: &JsonValue, key: &str) -> u64 {
    o.get(key).and_then(JsonValue::as_u64).unwrap_or(0)
}

impl TraceRecord {
    /// Parses one NDJSON line.
    pub fn parse(line: &str) -> Result<TraceRecord, String> {
        let v = JsonValue::parse(line)?;
        let ev = req_str(&v, "ev", "record")?;
        let ts_us = req_u64(&v, "ts_us", &ev)?;
        let w = v.get("w").and_then(JsonValue::as_i64).unwrap_or(-1);
        match ev.as_str() {
            "meta" => Ok(TraceRecord::Meta {
                ts_us,
                version: req_u64(&v, "version", &ev)?,
                design: req_str(&v, "design", &ev)?,
                workers: req_u64(&v, "workers", &ev)?,
            }),
            "span_open" => Ok(TraceRecord::SpanOpen {
                ts_us,
                w,
                name: req_str(&v, "name", &ev)?,
                depth: req_u64(&v, "depth", &ev)?,
            }),
            "span_close" => Ok(TraceRecord::SpanClose {
                ts_us,
                w,
                name: req_str(&v, "name", &ev)?,
                depth: req_u64(&v, "depth", &ev)?,
                dur_us: req_u64(&v, "dur_us", &ev)?,
            }),
            "path_start" => Ok(TraceRecord::PathStart {
                ts_us,
                w,
                path: req_u64(&v, "path", &ev)?,
                cycle: opt_u64(&v, "cycle"),
            }),
            "fork" => {
                let signals = match v.get("signals").and_then(JsonValue::as_array) {
                    Some(items) => items
                        .iter()
                        .map(|s| {
                            s.as_u64()
                                .ok_or_else(|| "fork: non-integer signal id".to_string())
                        })
                        .collect::<Result<Vec<u64>, String>>()?,
                    None => Vec::new(),
                };
                let n = req_u64(&v, "n", &ev)?;
                Ok(TraceRecord::Fork {
                    ts_us,
                    w,
                    parent: req_u64(&v, "parent", &ev)?,
                    pc: req_str(&v, "pc", &ev)?,
                    first: req_u64(&v, "first", &ev)?,
                    n,
                    want: v.get("want").and_then(JsonValue::as_u64).unwrap_or(n),
                    signals,
                })
            }
            "cohort" => {
                let members = match v.get("members").and_then(JsonValue::as_array) {
                    Some(items) => items
                        .iter()
                        .map(|s| {
                            s.as_u64()
                                .ok_or_else(|| "cohort: non-integer member id".to_string())
                        })
                        .collect::<Result<Vec<u64>, String>>()?,
                    None => Vec::new(),
                };
                Ok(TraceRecord::Cohort {
                    ts_us,
                    w,
                    first: req_u64(&v, "first", &ev)?,
                    n: req_u64(&v, "n", &ev)?,
                    members,
                })
            }
            "csm" => Ok(TraceRecord::Csm {
                ts_us,
                w,
                path: req_u64(&v, "path", &ev)?,
                pc: req_str(&v, "pc", &ev)?,
                kind: CsmEvent::from_name(&req_str(&v, "kind", &ev)?)
                    .ok_or_else(|| "csm: unknown kind".to_string())?,
                dur_us: opt_u64(&v, "dur_us"),
            }),
            "path_end" => Ok(TraceRecord::PathEnd {
                ts_us,
                w,
                path: req_u64(&v, "path", &ev)?,
                outcome: Outcome::from_name(&req_str(&v, "outcome", &ev)?)
                    .ok_or_else(|| "path_end: unknown outcome".to_string())?,
                cycles: req_u64(&v, "cycles", &ev)?,
                children: opt_u64(&v, "children"),
                phases: SegmentPhases {
                    restore_us: opt_u64(&v, "restore_us"),
                    exec_us: opt_u64(&v, "exec_us"),
                    save_us: opt_u64(&v, "save_us"),
                    csm_us: opt_u64(&v, "csm_us"),
                    settle_us: opt_u64(&v, "settle_us"),
                    batch_us: opt_u64(&v, "batch_us"),
                    event_us: opt_u64(&v, "event_us"),
                    wait_us: opt_u64(&v, "wait_us"),
                    seg_us: opt_u64(&v, "seg_us"),
                },
            }),
            "coverage" => Ok(TraceRecord::Coverage {
                ts_us,
                w,
                paths: req_u64(&v, "paths", &ev)?,
                cycles: req_u64(&v, "cycles", &ev)?,
                covered: req_u64(&v, "covered", &ev)?,
                total: req_u64(&v, "total", &ev)?,
            }),
            "cover_first" => Ok(TraceRecord::CoverFirst {
                ts_us,
                w,
                net: req_u64(&v, "net", &ev)?,
                path: req_u64(&v, "path", &ev)?,
                cycle: req_u64(&v, "cycle", &ev)?,
                pc: req_str(&v, "pc", &ev)?,
            }),
            "summary" => Ok(TraceRecord::Summary {
                ts_us,
                events: req_u64(&v, "events", &ev)?,
                dropped: req_u64(&v, "dropped", &ev)?,
                bytes: req_u64(&v, "bytes", &ev)?,
            }),
            other => Err(format!("unknown record type {other:?}")),
        }
    }

    /// The record's timestamp.
    pub fn ts_us(&self) -> u64 {
        match self {
            TraceRecord::Meta { ts_us, .. }
            | TraceRecord::SpanOpen { ts_us, .. }
            | TraceRecord::SpanClose { ts_us, .. }
            | TraceRecord::PathStart { ts_us, .. }
            | TraceRecord::Fork { ts_us, .. }
            | TraceRecord::Cohort { ts_us, .. }
            | TraceRecord::Csm { ts_us, .. }
            | TraceRecord::PathEnd { ts_us, .. }
            | TraceRecord::Coverage { ts_us, .. }
            | TraceRecord::CoverFirst { ts_us, .. }
            | TraceRecord::Summary { ts_us, .. } => *ts_us,
        }
    }
}

/// Outcome tallies over every `path_end` record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Paths that ran to completion.
    pub finished: u64,
    /// Paths skipped because the CSM covered their halt state.
    pub covered: u64,
    /// Paths that forked children.
    pub split: u64,
    /// Paths cut off by the global path budget.
    pub budget: u64,
}

impl OutcomeCounts {
    /// Total paths ended — should equal paths created.
    pub fn total(&self) -> u64 {
        self.finished + self.covered + self.split + self.budget
    }
}

/// A fork program counter aggregated over the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForkSite {
    /// The halt PC (formatted key).
    pub pc: String,
    /// Fork events at this PC.
    pub forks: u64,
    /// Children materialized across those forks.
    pub children: u64,
}

/// One point of the coverage-over-time curve, from a `coverage` record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoveragePoint {
    /// Wall time of the sample, µs from sink creation.
    pub ts_us: u64,
    /// Path segments completed.
    pub paths: u64,
    /// Cycles simulated across all paths.
    pub cycles: u64,
    /// Nets attributed (toggled at least once).
    pub covered: u64,
    /// Total nets in the design.
    pub total: u64,
}

/// One net's first-exercise verdict, from a `cover_first` record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirstExercise {
    /// The attributed net id.
    pub net: u64,
    /// The winning path.
    pub path: u64,
    /// Absolute cycle of the first toggle.
    pub cycle: u64,
    /// The winning path's fork PC, `"root"`, or `"reset"`.
    pub pc: String,
}

/// Per-worker activity aggregated from `path_start`/`path_end` records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStat {
    /// Worker index (-1 = coordinating thread).
    pub worker: i64,
    /// Segments this worker simulated.
    pub segments: u64,
    /// Cycles across those segments.
    pub cycles: u64,
    /// Total segment wall time, µs.
    pub busy_us: u64,
    /// Total scheduler wait, µs.
    pub wait_us: u64,
}

/// The parent/children view of the exploration DAG reconstructed from
/// `fork` records.
#[derive(Debug, Default)]
pub struct Lineage {
    /// child path → parent path.
    pub parent: HashMap<u64, u64>,
    /// parent path → children, in fork order.
    pub children: HashMap<u64, Vec<u64>>,
    /// forking path → the PC it forked at.
    pub fork_pc: HashMap<u64, String>,
}

impl Lineage {
    /// Subtree size (the path itself plus all descendants) per path that
    /// appears in any fork record.
    pub fn subtree_sizes(&self) -> HashMap<u64, u64> {
        let mut sizes: HashMap<u64, u64> = HashMap::new();
        // iterative post-order: push children first, fold once visited
        for &root in self
            .children
            .keys()
            .filter(|p| !self.parent.contains_key(p))
        {
            let mut stack: Vec<(u64, bool)> = vec![(root, false)];
            while let Some((path, expanded)) = stack.pop() {
                if expanded {
                    let mut size = 1u64;
                    if let Some(kids) = self.children.get(&path) {
                        for k in kids {
                            size += sizes.get(k).copied().unwrap_or(1);
                        }
                    }
                    sizes.insert(path, size);
                } else {
                    stack.push((path, true));
                    if let Some(kids) = self.children.get(&path) {
                        for &k in kids {
                            if self.children.contains_key(&k) {
                                stack.push((k, false));
                            }
                        }
                    }
                }
            }
        }
        sizes
    }

    /// Fork depth of `path` (root = 0).
    pub fn depth(&self, mut path: u64) -> u64 {
        let mut d = 0;
        while let Some(&p) = self.parent.get(&path) {
            d += 1;
            path = p;
            if d > self.parent.len() as u64 {
                break; // corrupt trace: cycle guard
            }
        }
        d
    }
}

/// A fully parsed trace with derived views.
#[derive(Debug, Default)]
pub struct Trace {
    /// Records in file (≈ timestamp) order.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Parses NDJSON text; blank lines are skipped, any malformed line is
    /// an error naming its line number.
    pub fn parse(text: &str) -> Result<Trace, String> {
        let mut records = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let rec = TraceRecord::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            records.push(rec);
        }
        Ok(Trace { records })
    }

    /// Reads and parses a trace file.
    pub fn read_file(path: &str) -> Result<Trace, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
        Trace::parse(&text)
    }

    /// The `meta` record, if present.
    pub fn meta(&self) -> Option<(&str, u64)> {
        self.records.iter().find_map(|r| match r {
            TraceRecord::Meta {
                design, workers, ..
            } => Some((design.as_str(), *workers)),
            _ => None,
        })
    }

    /// The trailing `summary` record, if present.
    pub fn summary(&self) -> Option<TraceStats> {
        self.records.iter().rev().find_map(|r| match r {
            TraceRecord::Summary {
                events,
                dropped,
                bytes,
                ..
            } => Some(TraceStats {
                events: *events,
                dropped: *dropped,
                bytes: *bytes,
            }),
            _ => None,
        })
    }

    /// Wall span covered by the records, µs.
    pub fn wall_us(&self) -> u64 {
        let min = self
            .records
            .iter()
            .map(TraceRecord::ts_us)
            .min()
            .unwrap_or(0);
        let max = self
            .records
            .iter()
            .map(TraceRecord::ts_us)
            .max()
            .unwrap_or(0);
        max - min
    }

    /// Outcome tallies over every `path_end`.
    pub fn outcome_counts(&self) -> OutcomeCounts {
        let mut c = OutcomeCounts::default();
        for r in &self.records {
            if let TraceRecord::PathEnd { outcome, .. } = r {
                match outcome {
                    Outcome::Finished => c.finished += 1,
                    Outcome::Covered => c.covered += 1,
                    Outcome::Split => c.split += 1,
                    Outcome::Budget => c.budget += 1,
                }
            }
        }
        c
    }

    /// Total simulated cycles over every `path_end`.
    pub fn total_cycles(&self) -> u64 {
        self.records
            .iter()
            .map(|r| match r {
                TraceRecord::PathEnd { cycles, .. } => *cycles,
                _ => 0,
            })
            .sum()
    }

    /// Paths created: one `path_start` record per path that began
    /// simulating (spilled cohort lanes do not re-start). Fork children
    /// killed by pre-split subsumption hold an id in the fork record's
    /// range but never start, matching the run's `paths_created` counter.
    pub fn paths_created(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| matches!(r, TraceRecord::PathStart { .. }))
            .count() as u64
    }

    /// Lineage tree from the `fork` records.
    pub fn lineage(&self) -> Lineage {
        let mut l = Lineage::default();
        for r in &self.records {
            if let TraceRecord::Fork {
                parent,
                pc,
                first,
                n,
                ..
            } = r
            {
                let kids: Vec<u64> = (*first..*first + *n).collect();
                for &k in &kids {
                    l.parent.insert(k, *parent);
                }
                l.children.entry(*parent).or_default().extend(kids);
                l.fork_pc.insert(*parent, pc.clone());
            }
        }
        l
    }

    /// Fork PCs ranked by children spawned (descending).
    pub fn fork_hotspots(&self) -> Vec<ForkSite> {
        let mut by_pc: HashMap<&str, (u64, u64)> = HashMap::new();
        for r in &self.records {
            if let TraceRecord::Fork { pc, n, .. } = r {
                let e = by_pc.entry(pc.as_str()).or_default();
                e.0 += 1;
                e.1 += n;
            }
        }
        let mut sites: Vec<ForkSite> = by_pc
            .into_iter()
            .map(|(pc, (forks, children))| ForkSite {
                pc: pc.to_owned(),
                forks,
                children,
            })
            .collect();
        sites.sort_by(|a, b| b.children.cmp(&a.children).then(a.pc.cmp(&b.pc)));
        sites
    }

    /// Total µs per phase over every `path_end` (plus CSM record
    /// durations split by kind), descending. `settle` is a subset of
    /// `exec`; `batch_eval`/`event_eval` are subsets of `settle`.
    pub fn phase_table(&self) -> Vec<(&'static str, u64)> {
        let mut exec = 0u64;
        let mut restore = 0u64;
        let mut save = 0u64;
        let mut csm = 0u64;
        let mut settle = 0u64;
        let mut batch = 0u64;
        let mut event = 0u64;
        let mut wait = 0u64;
        for r in &self.records {
            if let TraceRecord::PathEnd { phases, .. } = r {
                exec += phases.exec_us;
                restore += phases.restore_us;
                save += phases.save_us;
                csm += phases.csm_us;
                settle += phases.settle_us;
                batch += phases.batch_us;
                event += phases.event_us;
                wait += phases.wait_us;
            }
        }
        let mut table = vec![
            ("exec", exec),
            ("settle", settle),
            ("batch_eval", batch),
            ("event_eval", event),
            ("snapshot_restore", restore),
            ("snapshot_save", save),
            ("csm_observe", csm),
            ("sched_wait", wait),
        ];
        table.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        table
    }

    /// The coverage-over-time curve from the `coverage` records, in file
    /// order (monotonic in `covered` by construction).
    pub fn coverage_curve(&self) -> Vec<CoveragePoint> {
        self.records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Coverage {
                    ts_us,
                    paths,
                    cycles,
                    covered,
                    total,
                    ..
                } => Some(CoveragePoint {
                    ts_us: *ts_us,
                    paths: *paths,
                    cycles: *cycles,
                    covered: *covered,
                    total: *total,
                }),
                _ => None,
            })
            .collect()
    }

    /// The per-net first-exercise verdicts from the `cover_first` records,
    /// in file (= ascending net) order.
    pub fn cover_firsts(&self) -> Vec<FirstExercise> {
        self.records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::CoverFirst {
                    net,
                    path,
                    cycle,
                    pc,
                    ..
                } => Some(FirstExercise {
                    net: *net,
                    path: *path,
                    cycle: *cycle,
                    pc: pc.clone(),
                }),
                _ => None,
            })
            .collect()
    }

    /// Per-worker segments/cycles/busy/wait, ascending worker index.
    pub fn worker_stats(&self) -> Vec<WorkerStat> {
        let mut by_w: HashMap<i64, WorkerStat> = HashMap::new();
        for r in &self.records {
            if let TraceRecord::PathEnd {
                w, cycles, phases, ..
            } = r
            {
                let s = by_w.entry(*w).or_insert(WorkerStat {
                    worker: *w,
                    ..WorkerStat::default()
                });
                s.segments += 1;
                s.cycles += *cycles;
                s.busy_us += phases.seg_us;
                s.wait_us += phases.wait_us;
            }
        }
        let mut stats: Vec<WorkerStat> = by_w.into_values().collect();
        stats.sort_by_key(|s| s.worker);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A `Write` the test can inspect after the sink is finished.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn emit_fixture(sink: &TraceSink) {
        sink.emit_meta("dr5", 2);
        sink.emit(0, "path_start", |o| {
            o.u64("path", 0).u64("cycle", 0);
        });
        sink.emit(0, "fork", |o| {
            o.u64("parent", 0)
                .str("pc", "0x4400")
                .u64("first", 1)
                .u64("n", 2)
                .u64("want", 2)
                .u64_array("signals", &[7]);
        });
        sink.emit(0, "path_end", |o| {
            o.u64("path", 0)
                .str("outcome", "split")
                .u64("cycles", 100)
                .u64("children", 2)
                .u64("exec_us", 40)
                .u64("seg_us", 55)
                .u64("wait_us", 5);
        });
        sink.emit(1, "path_start", |o| {
            o.u64("path", 1).u64("cycle", 100);
        });
        sink.emit(1, "csm", |o| {
            o.u64("path", 1)
                .str("pc", "0x4400")
                .str("kind", "widen")
                .u64("dur_us", 3);
        });
        sink.emit(1, "path_end", |o| {
            o.u64("path", 1)
                .str("outcome", "finished")
                .u64("cycles", 60)
                .u64("seg_us", 30);
        });
        sink.emit(0, "path_start", |o| {
            o.u64("path", 2).u64("cycle", 100);
        });
        sink.emit(0, "csm", |o| {
            o.u64("path", 2)
                .str("pc", "0x4400")
                .str("kind", "cover")
                .u64("dur_us", 1);
        });
        sink.emit(0, "path_end", |o| {
            o.u64("path", 2)
                .str("outcome", "covered")
                .u64("cycles", 40)
                .u64("seg_us", 20);
        });
        sink.emit(0, "coverage", |o| {
            o.u64("paths", 3)
                .u64("cycles", 200)
                .u64("covered", 90)
                .u64("total", 120);
        });
        sink.emit(-1, "cover_first", |o| {
            o.u64("net", 7)
                .u64("path", 1)
                .u64("cycle", 130)
                .str("pc", "0x4400");
        });
    }

    #[test]
    fn sink_round_trips_through_reader() {
        let buf = SharedBuf::default();
        let sink = TraceSink::new(2, Box::new(buf.clone()));
        emit_fixture(&sink);
        let stats = sink.finish();
        assert_eq!(stats.events, 12);
        assert_eq!(stats.dropped, 0);
        assert!(stats.bytes > 0);
        assert_eq!(stats, sink.finish(), "finish is idempotent");
        sink.emit(0, "csm", |o| {
            o.u64("path", 9);
        });
        assert_eq!(sink.finish().events, 12, "post-finish emits are ignored");

        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let trace = Trace::parse(&text).unwrap();
        assert_eq!(trace.meta(), Some(("dr5", 2)));
        let summary = trace.summary().unwrap();
        assert_eq!(summary.events, 12);
        assert_eq!(summary.bytes, stats.bytes);

        let outcomes = trace.outcome_counts();
        assert_eq!(outcomes.finished, 1);
        assert_eq!(outcomes.covered, 1);
        assert_eq!(outcomes.split, 1);
        assert_eq!(outcomes.total(), 3);
        assert_eq!(trace.total_cycles(), 200);
        assert_eq!(trace.paths_created(), 3);

        let lineage = trace.lineage();
        assert_eq!(lineage.parent.get(&1), Some(&0));
        assert_eq!(lineage.parent.get(&2), Some(&0));
        assert_eq!(lineage.children[&0], vec![1, 2]);
        assert_eq!(lineage.fork_pc[&0], "0x4400");
        assert_eq!(lineage.subtree_sizes()[&0], 3);
        assert_eq!(lineage.depth(2), 1);

        let sites = trace.fork_hotspots();
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].children, 2);

        let table = trace.phase_table();
        assert_eq!(table[0], ("exec", 40));

        let curve = trace.coverage_curve();
        assert_eq!(curve.len(), 1);
        assert_eq!((curve[0].covered, curve[0].total), (90, 120));
        let firsts = trace.cover_firsts();
        assert_eq!(firsts.len(), 1);
        assert_eq!(firsts[0].net, 7);
        assert_eq!(firsts[0].cycle, 130);
        assert_eq!(firsts[0].pc, "0x4400");

        let workers = trace.worker_stats();
        assert_eq!(workers.len(), 2);
        assert_eq!(workers[0].worker, 0);
        assert_eq!(workers[0].segments, 2);
        assert_eq!(workers[0].busy_us, 75);
        assert_eq!(workers[1].cycles, 60);
    }

    #[test]
    fn global_install_is_visible_and_clearable() {
        let _serial = TEST_GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let buf = SharedBuf::default();
        let sink = Arc::new(TraceSink::new(1, Box::new(buf.clone())));
        assert!(!global_enabled());
        install_global(&sink);
        assert!(global_enabled());
        with_global(|s| {
            s.emit(-1, "span_open", |o| {
                o.str("name", "x").u64("depth", 0);
            })
        });
        clear_global();
        assert!(!global_enabled());
        let stats = sink.finish();
        assert_eq!(stats.events, 1);
        assert_eq!(thread_worker(), -1);
        set_thread_worker(3);
        assert_eq!(thread_worker(), 3);
        set_thread_worker(-1);
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        let err = Trace::parse("{\"ev\":\"meta\",\"ts_us\":0}\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        let err = Trace::parse("{\"ev\":\"nope\",\"ts_us\":0}").unwrap_err();
        assert!(err.contains("unknown record type"), "{err}");
        let err = Trace::parse("not json").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }
}
