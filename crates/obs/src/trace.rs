//! Leveled spans and events — a self-contained `tracing`-style facade.
//!
//! The dispatcher is process-global: the CLI (or a bench binary) calls
//! [`init`] once from its flags, and every crate below emits through the
//! [`crate::event!`] macros. A disabled call site costs one relaxed atomic
//! load and a predictable branch; no fields are formatted unless the level
//! is enabled.
//!
//! Spans are thread-local and purely contextual: [`span`] pushes a name
//! onto the current thread's stack, events record the dotted stack path,
//! and the guard emits a `span.close` event with the elapsed time (at
//! [`Level::Trace`]) when dropped.

use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::{escape_json, JsonObject};

/// Event severity, most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or user-visible failures.
    Error = 1,
    /// Suspicious conditions the run survives (non-convergence, caps hit).
    Warn = 2,
    /// Progress milestones and results.
    Info = 3,
    /// Per-path lifecycle and CSM decisions.
    Debug = 4,
    /// Per-segment spans and engine internals.
    Trace = 5,
}

impl Level {
    /// Lower-case name, as spelled in `--log-level` and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl std::str::FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Level, String> {
        match s {
            "error" => Ok(Level::Error),
            "warn" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!(
                "expected error, warn, info, debug, or trace, got \"{other}\""
            )),
        }
    }
}

/// Output format of the trace layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogFormat {
    /// Human-readable single-line text.
    #[default]
    Pretty,
    /// One JSON object per line (NDJSON), machine-parseable end to end.
    Json,
}

impl std::str::FromStr for LogFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<LogFormat, String> {
        match s {
            "pretty" => Ok(LogFormat::Pretty),
            "json" => Ok(LogFormat::Json),
            other => Err(format!("expected pretty or json, got \"{other}\"")),
        }
    }
}

/// A typed event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

macro_rules! from_uint {
    ($($t:ty),*) => { $(impl From<$t> for FieldValue {
        fn from(v: $t) -> FieldValue { FieldValue::U64(v as u64) }
    })* };
}
from_uint!(u8, u16, u32, u64, usize);

macro_rules! from_int {
    ($($t:ty),*) => { $(impl From<$t> for FieldValue {
        fn from(v: $t) -> FieldValue { FieldValue::I64(v as i64) }
    })* };
}
from_int!(i8, i16, i32, i64, isize);

impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

impl FieldValue {
    fn json(&self) -> String {
        match self {
            FieldValue::U64(v) => v.to_string(),
            FieldValue::I64(v) => v.to_string(),
            FieldValue::F64(v) if v.is_finite() => format!("{v:.6}"),
            FieldValue::F64(_) => "0".into(),
            FieldValue::Bool(v) => v.to_string(),
            FieldValue::Str(s) => format!("\"{}\"", escape_json(s)),
        }
    }

    fn pretty(&self) -> String {
        match self {
            FieldValue::U64(v) => v.to_string(),
            FieldValue::I64(v) => v.to_string(),
            FieldValue::F64(v) => format!("{v:.3}"),
            FieldValue::Bool(v) => v.to_string(),
            FieldValue::Str(s) => s.clone(),
        }
    }
}

/// `Info` unless [`init`] raises or lowers it; `eprintln!` diagnostics the
/// trace layer replaced were always-on, so warnings must stay visible by
/// default.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

struct SinkState {
    format: LogFormat,
    /// `None` writes to stderr.
    out: Option<Box<dyn Write + Send>>,
}

static SINK: Mutex<Option<SinkState>> = Mutex::new(None);

fn start_instant() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// (Re)configures the trace layer. `out = None` keeps stderr. Unlike
/// `tracing`'s global-default, re-initialization is allowed: the CLI
/// installs a default sink before argument parsing and upgrades it once
/// `--log-format`/`--log-level` are known.
pub fn init(level: Level, format: LogFormat, out: Option<Box<dyn Write + Send>>) {
    start_instant();
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
    *SINK.lock().unwrap() = Some(SinkState { format, out });
}

/// True when events at `level` are emitted — the one-atomic-load guard the
/// [`crate::event!`] macros use before formatting anything.
#[inline]
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// The currently configured maximum level.
pub fn max_level() -> Level {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        1 => Level::Error,
        2 => Level::Warn,
        3 => Level::Info,
        4 => Level::Debug,
        _ => Level::Trace,
    }
}

/// Formats one event line. Pure — unit tests target this directly.
pub fn format_line(
    format: LogFormat,
    elapsed_s: f64,
    level: Level,
    target: &str,
    span: Option<&str>,
    msg: &str,
    fields: &[(&str, FieldValue)],
) -> String {
    match format {
        LogFormat::Json => {
            let mut o = JsonObject::new();
            o.str("type", "log")
                .f64("ts_s", elapsed_s)
                .str("level", level.name())
                .str("target", target);
            if let Some(span) = span {
                o.str("span", span);
            }
            o.str("msg", msg);
            if !fields.is_empty() {
                let mut f = JsonObject::new();
                for (k, v) in fields {
                    f.raw(k, &v.json());
                }
                o.raw("fields", &f.finish());
            }
            o.finish()
        }
        LogFormat::Pretty => {
            let mut line = format!(
                "[{elapsed_s:9.3}s {:5} {target}]",
                level.name().to_uppercase()
            );
            if let Some(span) = span {
                line.push_str(&format!(" ({span})"));
            }
            line.push(' ');
            line.push_str(msg);
            if !fields.is_empty() {
                let kv: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| format!("{k}={}", v.pretty()))
                    .collect();
                line.push_str(&format!(" {{{}}}", kv.join(" ")));
            }
            line
        }
    }
}

/// Emits one event. Call through the [`crate::event!`] macros, which guard
/// with [`enabled`] so arguments are never formatted for disabled levels.
pub fn emit(level: Level, target: &str, msg: &str, fields: &[(&str, FieldValue)]) {
    let elapsed = start_instant().elapsed().as_secs_f64();
    let span = SPAN_STACK.with(|s| {
        let s = s.borrow();
        if s.is_empty() {
            None
        } else {
            Some(s.join("."))
        }
    });
    let mut sink = SINK.lock().unwrap();
    let format = sink.as_ref().map_or(LogFormat::Pretty, |s| s.format);
    let line = format_line(format, elapsed, level, target, span.as_deref(), msg, fields);
    match sink.as_mut().and_then(|s| s.out.as_mut()) {
        Some(w) => {
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
        None => eprintln!("{line}"),
    }
}

/// An RAII span: pushes `target` onto the thread's span stack so nested
/// events carry context; the guard pops on drop and, at [`Level::Trace`],
/// emits a `span.close` event with the span's wall time. When a run-trace
/// sink is installed ([`crate::tracefile::install_global`]) the open and
/// close are additionally recorded as `span_open`/`span_close` trace
/// records, so CLI-level spans appear in the Chrome export.
pub fn span(target: &'static str) -> SpanGuard {
    let depth = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.push(target);
        (s.len() - 1) as u64
    });
    let traced = crate::tracefile::global_enabled();
    if traced {
        crate::tracefile::with_global(|sink| {
            sink.emit(crate::tracefile::thread_worker(), "span_open", |o| {
                o.str("name", target).u64("depth", depth);
            });
        });
    }
    SpanGuard {
        target,
        depth,
        traced,
        start: (traced || enabled(Level::Trace)).then(Instant::now),
    }
}

/// Guard returned by [`span`]; see there.
#[must_use = "a span ends when its guard drops"]
#[derive(Debug)]
pub struct SpanGuard {
    target: &'static str,
    depth: u64,
    traced: bool,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let us = self
            .start
            .map(|s| s.elapsed().as_micros() as u64)
            .unwrap_or(0);
        if self.traced {
            crate::tracefile::with_global(|sink| {
                sink.emit(crate::tracefile::thread_worker(), "span_close", |o| {
                    o.str("name", self.target)
                        .u64("depth", self.depth)
                        .u64("dur_us", us);
                });
            });
        }
        if self.start.is_some() && enabled(Level::Trace) {
            crate::event!(
                Level::Trace,
                "span.close",
                { elapsed_us = us },
                "{} closed",
                self.target
            );
        }
        SPAN_STACK.with(|s| {
            let popped = s.borrow_mut().pop();
            debug_assert_eq!(popped, Some(self.target), "span stack imbalance");
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_and_parsing() {
        assert!(Level::Error < Level::Trace);
        assert_eq!("debug".parse::<Level>().unwrap(), Level::Debug);
        assert!("loud".parse::<Level>().is_err());
        assert_eq!("json".parse::<LogFormat>().unwrap(), LogFormat::Json);
        assert!("xml".parse::<LogFormat>().is_err());
    }

    #[test]
    fn json_lines_are_single_line_objects() {
        let line = format_line(
            LogFormat::Json,
            1.25,
            Level::Info,
            "path.fork",
            Some("analysis.segment"),
            "forked \"quoted\"",
            &[
                ("worker", FieldValue::U64(2)),
                ("note", FieldValue::Str("a\nb".into())),
            ],
        );
        assert!(!line.contains('\n'), "{line}");
        assert!(line.starts_with("{\"type\":\"log\""), "{line}");
        assert!(line.contains("\"level\":\"info\""), "{line}");
        assert!(line.contains("\"span\":\"analysis.segment\""), "{line}");
        assert!(line.contains("\"msg\":\"forked \\\"quoted\\\"\""), "{line}");
        assert!(
            line.contains("\"fields\":{\"worker\":2,\"note\":\"a\\nb\"}"),
            "{line}"
        );
    }

    #[test]
    fn pretty_lines_carry_level_target_and_fields() {
        let line = format_line(
            LogFormat::Pretty,
            0.5,
            Level::Warn,
            "analyze",
            None,
            "3 paths exhausted the cycle budget",
            &[("budget", FieldValue::U64(200))],
        );
        assert!(line.contains("WARN"), "{line}");
        assert!(line.contains("analyze"), "{line}");
        assert!(line.contains("cycle budget"), "{line}");
        assert!(line.contains("{budget=200}"), "{line}");
    }

    #[test]
    fn span_stack_nests_and_unwinds() {
        let outer = span("outer");
        {
            let inner = span("inner");
            SPAN_STACK.with(|s| assert_eq!(*s.borrow(), vec!["outer", "inner"]));
            drop(inner);
        }
        SPAN_STACK.with(|s| assert_eq!(*s.borrow(), vec!["outer"]));
        drop(outer);
        SPAN_STACK.with(|s| assert!(s.borrow().is_empty()));
    }

    #[test]
    fn nested_spans_record_ordered_open_close_into_the_trace_sink() {
        use crate::tracefile::{self, TraceRecord, TraceSink};
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let _serial = tracefile::TEST_GLOBAL_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let buf = SharedBuf::default();
        let sink = Arc::new(TraceSink::new(1, Box::new(buf.clone())));
        tracefile::install_global(&sink);
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
        }
        tracefile::clear_global();
        sink.finish();

        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let trace = crate::tracefile::Trace::parse(&text).unwrap();
        let spans: Vec<(&str, &str, u64)> = trace
            .records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::SpanOpen { name, depth, .. } => Some(("open", name.as_str(), *depth)),
                TraceRecord::SpanClose { name, depth, .. } => {
                    Some(("close", name.as_str(), *depth))
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            spans,
            vec![
                ("open", "outer", 0),
                ("open", "inner", 1),
                ("close", "inner", 1),
                ("close", "outer", 0),
            ],
            "nested spans close innermost-first with matching depths"
        );
    }

    #[test]
    fn field_value_conversions() {
        assert_eq!(FieldValue::from(3usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from(-1i32), FieldValue::I64(-1));
        assert_eq!(FieldValue::from(true), FieldValue::Bool(true));
        assert_eq!(FieldValue::from("s"), FieldValue::Str("s".into()));
        assert_eq!(FieldValue::F64(f64::NAN).json(), "0");
    }
}
