//! # symsim-obs
//!
//! The observability layer of the co-analysis pipeline: the introspection
//! the paper's evaluation (Table 4 / Fig. 6) relies on — paths created vs.
//! skipped, CSM merge decisions, cycles simulated — made available *while a
//! run is in flight* instead of only in the final report.
//!
//! Three pieces, deliberately dependency-free (the build environment is
//! sealed, so this crate implements its own `tracing`-style facade):
//!
//! * [`MetricsRegistry`] — a lock-free, per-worker-sharded registry of
//!   atomic counters, gauges, and fixed-bucket histograms. The metric set
//!   is static (enums [`CounterId`] / [`GaugeId`] / [`HistogramId`]), so a
//!   hot-path increment is a single relaxed atomic add into the worker's
//!   own cache-line-aligned shard — no hashing, no locking, no false
//!   sharing. Aggregation happens on read ([`MetricsRegistry::snapshot`]).
//! * [`trace`] — leveled spans and events with `pretty` or NDJSON `json`
//!   output. Call sites are guarded by one relaxed atomic level check
//!   (branch-predictable when tracing is off), via the [`event!`],
//!   [`info!`], [`warn!`], [`error!`], [`debug!`], and [`trace_event!`]
//!   macros and [`trace::span`].
//! * [`Heartbeat`] — a background thread emitting periodic NDJSON progress
//!   records (elapsed, cycles/sec, live/queued paths, CSM size, per-worker
//!   cycle counts) from a shared registry, plus a guaranteed final record
//!   on shutdown so even sub-interval runs produce at least one line.
//! * [`tracefile`] — the run-trace subsystem: a sharded, drop-counted
//!   NDJSON writer ([`TraceSink`]) recording the causal exploration events
//!   (forks, CSM decisions, path outcomes with per-phase timing) from
//!   which the full path-lineage tree is reconstructible, plus the reader
//!   and aggregation helpers ([`Trace`]) behind `symsim trace`; [`chrome`]
//!   renders a parsed trace as Chrome Trace Event JSON for Perfetto, and
//!   [`profile`] names the timed phases and their registry histograms.
//! * [`ledger`] — the persistent run ledger: one self-contained NDJSON
//!   record per run (fingerprints, environment, verdict digest, full
//!   metrics snapshot) appended to `$SYMSIM_LEDGER`, plus the reader and
//!   the MAD-noise-banded regression policy behind `symsim runs diff`;
//!   [`stats`] holds the shared robust statistics (median/MAD bands and
//!   the historic smoke noise allowance).
//!
//! The NDJSON record and metrics-snapshot schemas are checked in under
//! `docs/schema/` and validated in CI by `scripts/validate_metrics.py`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
mod heartbeat;
mod json;
pub mod ledger;
mod metrics;
pub mod profile;
pub mod stats;
pub mod trace;
pub mod tracefile;

pub use chrome::export_chrome;
pub use heartbeat::{Heartbeat, HeartbeatOut};
pub use json::{escape_json, JsonObject, JsonValue};
pub use ledger::{env_fingerprint, EnvFingerprint, LedgerEntry, LedgerRecord};
pub use metrics::{
    CounterId, GaugeId, HistogramId, HistogramSnapshot, MetricShard, MetricsRegistry,
    MetricsSnapshot, DIRTY_PCT_BUCKETS,
};
pub use profile::{Phase, PhaseTotals};
pub use trace::{Level, LogFormat};
pub use tracefile::{CoveragePoint, FirstExercise, Trace, TraceRecord, TraceSink, TraceStats};

/// Emits a structured event when `level` is enabled.
///
/// ```
/// use symsim_obs::{event, Level};
/// event!(Level::Info, "path.fork", { worker = 0usize, children = 2usize }, "forked");
/// event!(Level::Debug, "csm", "covered at pc {:#x}", 0x42);
/// ```
#[macro_export]
macro_rules! event {
    ($lvl:expr, $target:expr, { $($k:ident = $v:expr),* $(,)? }, $($fmt:tt)+) => {
        if $crate::trace::enabled($lvl) {
            $crate::trace::emit(
                $lvl,
                $target,
                &format!($($fmt)+),
                &[$((stringify!($k), $crate::trace::FieldValue::from($v))),*],
            );
        }
    };
    ($lvl:expr, $target:expr, $($fmt:tt)+) => {
        $crate::event!($lvl, $target, {}, $($fmt)+)
    };
}

/// [`event!`] at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($target:expr, $($rest:tt)+) => { $crate::event!($crate::Level::Error, $target, $($rest)+) };
}

/// [`event!`] at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($target:expr, $($rest:tt)+) => { $crate::event!($crate::Level::Warn, $target, $($rest)+) };
}

/// [`event!`] at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($target:expr, $($rest:tt)+) => { $crate::event!($crate::Level::Info, $target, $($rest)+) };
}

/// [`event!`] at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($target:expr, $($rest:tt)+) => { $crate::event!($crate::Level::Debug, $target, $($rest)+) };
}

/// [`event!`] at [`Level::Trace`].
#[macro_export]
macro_rules! trace_event {
    ($target:expr, $($rest:tt)+) => { $crate::event!($crate::Level::Trace, $target, $($rest)+) };
}
