//! Chrome Trace Event (Perfetto-loadable) export of a parsed [`Trace`].
//!
//! Mapping: workers become tracks (`thread_name` metadata, tid = worker
//! index + 2 so the coordinating thread gets tid 1), each simulated
//! segment becomes a complete `"X"` slice on its worker's track, each
//! path's lifetime (creation at its fork → `path_end`) becomes an async
//! `"b"`/`"e"` span so queue latency is visible, spans recorded by
//! [`crate::trace::span`] become `"B"`/`"E"` duration events, fork /
//! widen→cover edges become `"s"`/`"f"` flow events, coverage-timeline
//! samples become a `"C"` counter track ("covered nets"), and
//! first-exercise attributions become `"i"` instant events. Schema:
//! `docs/schema/chrome_trace.schema.json`.

use std::collections::HashMap;

use crate::json::JsonObject;
use crate::tracefile::{CsmEvent, Trace, TraceRecord};

const PID: u64 = 1;

/// tid for a trace worker index (`-1` → 1, worker 0 → 2, …).
fn tid(w: i64) -> u64 {
    (w + 2).max(1) as u64
}

struct Events {
    out: Vec<String>,
}

impl Events {
    fn push(&mut self, fill: impl FnOnce(&mut JsonObject)) {
        let mut o = JsonObject::new();
        fill(&mut o);
        self.out.push(o.finish());
    }
}

/// Renders `trace` as a Trace Event JSON document (object form, with a
/// `traceEvents` array), loadable in Perfetto / `chrome://tracing`.
pub fn export_chrome(trace: &Trace) -> String {
    let mut ev = Events { out: Vec::new() };

    let design = trace.meta().map(|(d, _)| d.to_owned());
    ev.push(|o| {
        let mut args = JsonObject::new();
        args.str(
            "name",
            &design
                .as_deref()
                .map(|d| format!("symsim {d}"))
                .unwrap_or_else(|| "symsim".to_owned()),
        );
        o.str("name", "process_name")
            .str("ph", "M")
            .u64("ts", 0)
            .u64("pid", PID)
            .raw("args", &args.finish());
    });

    // one thread_name metadata record per track seen anywhere in the trace
    let mut tracks: Vec<i64> = trace
        .records
        .iter()
        .filter_map(|r| match r {
            TraceRecord::SpanOpen { w, .. }
            | TraceRecord::SpanClose { w, .. }
            | TraceRecord::PathStart { w, .. }
            | TraceRecord::Fork { w, .. }
            | TraceRecord::Cohort { w, .. }
            | TraceRecord::Csm { w, .. }
            | TraceRecord::PathEnd { w, .. }
            | TraceRecord::CoverFirst { w, .. } => Some(*w),
            _ => None,
        })
        .collect();
    tracks.sort_unstable();
    tracks.dedup();
    for &w in &tracks {
        ev.push(|o| {
            let mut args = JsonObject::new();
            args.str(
                "name",
                &if w < 0 {
                    "main".to_owned()
                } else {
                    format!("worker {w}")
                },
            );
            o.str("name", "thread_name")
                .str("ph", "M")
                .u64("ts", 0)
                .u64("pid", PID)
                .u64("tid", tid(w))
                .raw("args", &args.finish());
        });
    }

    // index path starts (for X slices, async begins, and flow targets)
    let mut starts: HashMap<u64, (u64, i64, u64)> = HashMap::new(); // path → (ts, w, cycle)
    for r in &trace.records {
        if let TraceRecord::PathStart {
            ts_us,
            w,
            path,
            cycle,
        } = r
        {
            starts.entry(*path).or_insert((*ts_us, *w, *cycle));
        }
    }
    // creation time/track per path (fork record), for async span begins
    let mut created: HashMap<u64, (u64, i64, u64)> = HashMap::new(); // child → (ts, w, parent)
    for r in &trace.records {
        if let TraceRecord::Fork {
            ts_us,
            w,
            parent,
            first,
            n,
            ..
        } = r
        {
            for child in *first..*first + *n {
                created.entry(child).or_insert((*ts_us, *w, *parent));
            }
        }
    }
    // most recent widen per PC, for widen→cover flow sources
    let mut last_widen: HashMap<&str, (u64, i64)> = HashMap::new();
    let mut cover_seq = 0u64;

    for r in &trace.records {
        match r {
            TraceRecord::SpanOpen { ts_us, w, name, .. } => ev.push(|o| {
                o.str("name", name)
                    .str("cat", "span")
                    .str("ph", "B")
                    .u64("ts", *ts_us)
                    .u64("pid", PID)
                    .u64("tid", tid(*w));
            }),
            TraceRecord::SpanClose { ts_us, w, name, .. } => ev.push(|o| {
                o.str("name", name)
                    .str("cat", "span")
                    .str("ph", "E")
                    .u64("ts", *ts_us)
                    .u64("pid", PID)
                    .u64("tid", tid(*w));
            }),
            TraceRecord::Fork {
                ts_us,
                w,
                first,
                n,
                pc,
                ..
            } => {
                // async span begin + fork flow source for each child
                for child in *first..*first + *n {
                    ev.push(|o| {
                        o.str("name", "path")
                            .str("cat", "path")
                            .str("ph", "b")
                            .u64("id", child)
                            .u64("ts", *ts_us)
                            .u64("pid", PID)
                            .u64("tid", tid(*w));
                    });
                    if starts.contains_key(&child) {
                        ev.push(|o| {
                            let mut args = JsonObject::new();
                            args.str("pc", pc);
                            o.str("name", "fork")
                                .str("cat", "fork")
                                .str("ph", "s")
                                .u64("id", child)
                                .u64("ts", *ts_us)
                                .u64("pid", PID)
                                .u64("tid", tid(*w))
                                .raw("args", &args.finish());
                        });
                    }
                }
            }
            TraceRecord::PathStart { ts_us, w, path, .. } => {
                if created.contains_key(path) {
                    ev.push(|o| {
                        o.str("name", "fork")
                            .str("cat", "fork")
                            .str("ph", "f")
                            .str("bp", "e")
                            .u64("id", *path)
                            .u64("ts", *ts_us)
                            .u64("pid", PID)
                            .u64("tid", tid(*w));
                    });
                } else {
                    // root: its lifetime starts when it starts running
                    ev.push(|o| {
                        o.str("name", "path")
                            .str("cat", "path")
                            .str("ph", "b")
                            .u64("id", *path)
                            .u64("ts", *ts_us)
                            .u64("pid", PID)
                            .u64("tid", tid(*w));
                    });
                }
            }
            TraceRecord::Cohort { ts_us, w, n, .. } => ev.push(|o| {
                let mut args = JsonObject::new();
                args.u64("lanes", *n);
                o.str("name", "cohort")
                    .str("cat", "cohort")
                    .str("ph", "i")
                    .str("s", "t")
                    .u64("ts", *ts_us)
                    .u64("pid", PID)
                    .u64("tid", tid(*w))
                    .raw("args", &args.finish());
            }),
            TraceRecord::Csm {
                ts_us, w, pc, kind, ..
            } => match kind {
                CsmEvent::Widen => {
                    last_widen.insert(pc.as_str(), (*ts_us, *w));
                }
                CsmEvent::Cover => {
                    if let Some(&(widen_ts, widen_w)) = last_widen.get(pc.as_str()) {
                        cover_seq += 1;
                        let id = cover_seq;
                        ev.push(|o| {
                            let mut args = JsonObject::new();
                            args.str("pc", pc);
                            o.str("name", "cover")
                                .str("cat", "cover")
                                .str("ph", "s")
                                .u64("id", id)
                                .u64("ts", widen_ts)
                                .u64("pid", PID)
                                .u64("tid", tid(widen_w))
                                .raw("args", &args.finish());
                        });
                        ev.push(|o| {
                            o.str("name", "cover")
                                .str("cat", "cover")
                                .str("ph", "f")
                                .str("bp", "e")
                                .u64("id", id)
                                .u64("ts", *ts_us)
                                .u64("pid", PID)
                                .u64("tid", tid(*w));
                        });
                    }
                }
                CsmEvent::Demote => ev.push(|o| {
                    let mut args = JsonObject::new();
                    args.str("pc", pc);
                    o.str("name", "demote")
                        .str("cat", "csm")
                        .str("ph", "i")
                        .str("s", "t")
                        .u64("ts", *ts_us)
                        .u64("pid", PID)
                        .u64("tid", tid(*w))
                        .raw("args", &args.finish());
                }),
                CsmEvent::Kill => ev.push(|o| {
                    let mut args = JsonObject::new();
                    args.str("pc", pc);
                    o.str("name", "kill")
                        .str("cat", "csm")
                        .str("ph", "i")
                        .str("s", "t")
                        .u64("ts", *ts_us)
                        .u64("pid", PID)
                        .u64("tid", tid(*w))
                        .raw("args", &args.finish());
                }),
            },
            TraceRecord::PathEnd {
                ts_us,
                w,
                path,
                outcome,
                cycles,
                phases,
                ..
            } => {
                let (start_ts, start_w) = match starts.get(path) {
                    Some(&(ts, sw, _)) => (ts, sw),
                    None => (ts_us.saturating_sub(phases.seg_us), *w),
                };
                ev.push(|o| {
                    let mut args = JsonObject::new();
                    args.str("outcome", outcome.name())
                        .u64("cycles", *cycles)
                        .u64("wait_us", phases.wait_us);
                    o.str("name", &format!("path {path}"))
                        .str("cat", "segment")
                        .str("ph", "X")
                        .u64("ts", start_ts)
                        .u64("dur", ts_us.saturating_sub(start_ts).max(1))
                        .u64("pid", PID)
                        .u64("tid", tid(start_w))
                        .raw("args", &args.finish());
                });
                ev.push(|o| {
                    o.str("name", "path")
                        .str("cat", "path")
                        .str("ph", "e")
                        .u64("id", *path)
                        .u64("ts", *ts_us)
                        .u64("pid", PID)
                        .u64("tid", tid(*w));
                });
            }
            TraceRecord::Coverage { ts_us, covered, .. } => ev.push(|o| {
                let mut args = JsonObject::new();
                args.u64("covered", *covered);
                o.str("name", "covered nets")
                    .str("cat", "coverage")
                    .str("ph", "C")
                    .u64("ts", *ts_us)
                    .u64("pid", PID)
                    .raw("args", &args.finish());
            }),
            TraceRecord::CoverFirst {
                ts_us,
                w,
                net,
                path,
                cycle,
                pc,
            } => ev.push(|o| {
                let mut args = JsonObject::new();
                args.u64("net", *net)
                    .u64("path", *path)
                    .u64("cycle", *cycle)
                    .str("pc", pc);
                o.str("name", "first_exercise")
                    .str("cat", "coverage")
                    .str("ph", "i")
                    .str("s", "p")
                    .u64("ts", *ts_us)
                    .u64("pid", PID)
                    .u64("tid", tid(*w))
                    .raw("args", &args.finish());
            }),
            TraceRecord::Meta { .. } | TraceRecord::Summary { .. } => {}
        }
    }

    let mut doc = String::from("{\"traceEvents\":[");
    for (i, e) in ev.out.iter().enumerate() {
        if i > 0 {
            doc.push(',');
        }
        doc.push('\n');
        doc.push_str(e);
    }
    doc.push_str("\n],\"displayTimeUnit\":\"ms\"}");
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    const FIXTURE: &str = concat!(
        "{\"ev\":\"meta\",\"ts_us\":0,\"w\":-1,\"version\":1,\"design\":\"dr5\",\"workers\":2}\n",
        "{\"ev\":\"span_open\",\"ts_us\":1,\"w\":-1,\"name\":\"analysis\",\"depth\":0}\n",
        "{\"ev\":\"path_start\",\"ts_us\":2,\"w\":0,\"path\":0,\"cycle\":0}\n",
        "{\"ev\":\"csm\",\"ts_us\":3,\"w\":0,\"path\":0,\"pc\":\"0x10\",\"kind\":\"widen\",\"dur_us\":1}\n",
        "{\"ev\":\"fork\",\"ts_us\":4,\"w\":0,\"parent\":0,\"pc\":\"0x10\",\"first\":1,\"n\":2,\"want\":2,\"signals\":[5]}\n",
        "{\"ev\":\"path_end\",\"ts_us\":5,\"w\":0,\"path\":0,\"outcome\":\"split\",\"cycles\":9,\"children\":2,\"seg_us\":3}\n",
        "{\"ev\":\"path_start\",\"ts_us\":6,\"w\":1,\"path\":1,\"cycle\":9}\n",
        "{\"ev\":\"csm\",\"ts_us\":7,\"w\":1,\"path\":1,\"pc\":\"0x10\",\"kind\":\"cover\",\"dur_us\":1}\n",
        "{\"ev\":\"path_end\",\"ts_us\":8,\"w\":1,\"path\":1,\"outcome\":\"covered\",\"cycles\":4,\"seg_us\":2}\n",
        "{\"ev\":\"coverage\",\"ts_us\":8,\"w\":-1,\"paths\":2,\"cycles\":13,\"covered\":40,\"total\":64}\n",
        "{\"ev\":\"cover_first\",\"ts_us\":8,\"w\":-1,\"net\":7,\"path\":1,\"cycle\":11,\"pc\":\"0x10\"}\n",
        "{\"ev\":\"span_close\",\"ts_us\":9,\"w\":-1,\"name\":\"analysis\",\"depth\":0,\"dur_us\":8}\n",
        "{\"ev\":\"summary\",\"ts_us\":10,\"w\":-1,\"events\":12,\"dropped\":0,\"bytes\":100}\n",
    );

    #[test]
    fn export_is_valid_trace_event_json() {
        let trace = Trace::parse(FIXTURE).unwrap();
        let doc = export_chrome(&trace);
        let v = JsonValue::parse(&doc).expect("chrome export parses as JSON");
        let events = v
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents array");
        assert!(!events.is_empty());
        let mut phases: Vec<&str> = Vec::new();
        for e in events {
            assert!(e.get("name").and_then(JsonValue::as_str).is_some());
            let ph = e.get("ph").and_then(JsonValue::as_str).unwrap();
            assert!(e.get("pid").and_then(JsonValue::as_u64).is_some());
            assert!(e.get("ts").is_some());
            phases.push(ph);
        }
        for want in ["M", "B", "E", "X", "b", "e", "s", "f", "C", "i"] {
            assert!(phases.contains(&want), "missing ph {want:?}: {phases:?}");
        }
        // two X slices (one per segment), flows for fork and cover
        assert_eq!(phases.iter().filter(|p| **p == "X").count(), 2);
        assert!(doc.contains("\"thread_name\""));
        assert!(doc.contains("worker 1"));
    }
}
