//! The lock-free metrics registry.
//!
//! The metric set is static: every counter, gauge, and histogram the
//! pipeline records is an enum variant, so a handle is just a discriminant
//! and an increment indexes a fixed array — one relaxed atomic op, no
//! hashing. The registry is sharded per worker; workers write only their
//! own cache-line-aligned shard, and a [`MetricsRegistry::snapshot`] sums
//! shards on read. Gauges are signed up/down counters (additive across
//! shards), so `live = Σ shards(+1 on claim, -1 on done)` is exact.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Monotonic event counters, named as they appear in snapshot JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum CounterId {
    /// Paths pushed onto the worklist (root included).
    PathsCreated,
    /// Children dropped by the `max_paths` cap.
    PathsDropped,
    /// Paths skipped because their halted state was covered.
    PathsSkipped,
    /// Paths that ran the application to completion.
    PathsFinished,
    /// Paths abandoned on the per-segment cycle budget.
    PathsBudgetExhausted,
    /// Path segments actually simulated.
    PathsSimulated,
    /// Total cycles simulated across all paths.
    Cycles,
    /// Level tapes run by the batched evaluation kernel.
    BatchedLevelEvals,
    /// Scalar node evaluations (event-driven dispatch).
    EventEvals,
    /// Evaluation writes overridden by an active force (path steering).
    ForcedWrites,
    /// States presented to the conservative-state manager.
    CsmObservations,
    /// Observations covered by a stored conservative state.
    CsmCovered,
    /// Superstate merges (widenings) performed.
    CsmWidenings,
    /// Full subset checks skipped by the unknown-bit-count early-out.
    CsmCoverChecksElided,
    /// Tasks taken from a peer's deque rather than the worker's own.
    SchedSteals,
    /// Times a worker parked on the scheduler condvar.
    SchedParks,
    /// Path cohorts packed for lane evaluation (one per cohort work item
    /// that passed the pack eligibility checks).
    CohortsFormed,
    /// Member paths carried by formed cohorts (mean lane occupancy is
    /// `cohort_member_paths / cohorts_formed`).
    CohortMemberPaths,
    /// Cohort lanes spilled back to scalar segments on a fully-unknown
    /// memory address.
    CohortLaneSpills,
    /// Full-netlist settle passes run by a compiled native kernel.
    CompiledEvals,
    /// Compiled-kernel cache lookups served by an existing dylib (zero
    /// codegen cost).
    CompiledCacheHits,
    /// Compiled-kernel cache misses that triggered codegen + `rustc`.
    CompiledCacheMisses,
    /// Adaptive-policy PC entries collapsed from multi-state to the
    /// single-merge uber-state (one per demoted PC).
    CsmPolicyDemotions,
    /// Stored conservative states absorbed by a sibling slot that widened
    /// enough to cover them (cross-slot subsumption pruning).
    CsmSlotsPruned,
    /// Observations rejected because the halted state contradicted an
    /// application constraint (the state is infeasible; treated as covered
    /// so widening terminates).
    CsmConstraintConflicts,
    /// Split children never enqueued because their forced start state was
    /// already covered by a sibling conservative state at the fork PC.
    PathsKilledPresplit,
}

/// Display/JSON names, indexed by [`CounterId`] discriminant.
const COUNTER_NAMES: [&str; COUNTERS] = [
    "paths_created",
    "paths_dropped",
    "paths_skipped",
    "paths_finished",
    "paths_budget_exhausted",
    "paths_simulated",
    "cycles",
    "batched_level_evals",
    "event_evals",
    "forced_writes",
    "csm_observations",
    "csm_covered",
    "csm_widenings",
    "csm_cover_checks_elided",
    "sched_steals",
    "sched_parks",
    "cohorts_formed",
    "cohort_member_paths",
    "cohort_lane_spills",
    "compiled_evals",
    "compiled_cache_hits",
    "compiled_cache_misses",
    "csm_policy_demotions",
    "csm_slots_pruned",
    "csm_constraint_conflicts",
    "paths_killed_presplit",
];
const COUNTERS: usize = CounterId::PathsKilledPresplit as usize + 1;

/// Up/down gauges (additive across shards; see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum GaugeId {
    /// Paths claimed by a worker and not yet finished.
    PathsLive,
    /// Paths sitting in scheduler queues.
    PathsQueued,
    /// Conservative states currently stored.
    CsmStoredStates,
    /// Distinct PCs with stored conservative states.
    CsmDistinctPcs,
}

const GAUGE_NAMES: [&str; GAUGES] = [
    "paths_live",
    "paths_queued",
    "csm_stored_states",
    "csm_distinct_pcs",
];
const GAUGES: usize = GaugeId::CsmDistinctPcs as usize + 1;

/// Fixed-bucket histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HistogramId {
    /// Dirty fraction (percent) of levels at dispatch time, in deciles:
    /// buckets `0-9 %, 10-19 %, …, 90-99 %, 100 %`. The engine accumulates
    /// this locally with the same layout (see [`DIRTY_PCT_BUCKETS`]) and
    /// the explorer folds it in bucket-for-bucket.
    DirtyFractionPct,
    /// Fork fan-out: branch concretizations (`2^n` for `n` enumerated
    /// unknown control signals) per fork site, recorded *before* the
    /// `max_paths` clamp — the signal cohort sizing depends on.
    SplitFanout,
    /// Cycles simulated per path segment.
    SegmentCycles,
    /// Engine settle (Active-region propagation) time per segment, µs.
    PhaseSettleUs,
    /// Snapshot save time per halted segment, µs.
    PhaseSaveUs,
    /// Snapshot restore time per segment, µs.
    PhaseRestoreUs,
    /// CSM subset (cover) check time per observation, µs.
    PhaseCsmCheckUs,
    /// CSM merge/widen time per widening, µs.
    PhaseCsmWidenUs,
    /// Scheduler wait (time blocked in `next_task`) per claim, µs.
    PhaseSchedWaitUs,
    /// Batched level-tape evaluation time per segment, µs.
    PhaseBatchEvalUs,
    /// Scalar event-driven evaluation time per segment, µs.
    PhaseEventEvalUs,
    /// Member paths per formed cohort (lane occupancy).
    CohortLaneOccupancy,
    /// Kernel source generation + `rustc` build time per cache miss, µs.
    /// A cold build is rustc-dominated (hundreds of ms to minutes), hence
    /// the coarse second-scale bounds.
    PhaseCodegenUs,
    /// Compiled-kernel dylib open/validate time per run, µs.
    PhaseLoadUs,
}

const HISTOGRAM_COUNT: usize = HistogramId::PhaseLoadUs as usize + 1;

/// Bucket count of [`HistogramId::DirtyFractionPct`]: ten deciles plus the
/// exactly-100% bucket.
pub const DIRTY_PCT_BUCKETS: usize = 11;

/// Inclusive upper bounds per histogram; values above the last bound land
/// in one extra overflow bucket.
/// Power-of-two µs bounds shared by every phase-timing histogram: sub-µs
/// phases land in the first bucket, anything past ~1 ms in the overflow.
const PHASE_US_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

const HISTOGRAM_BOUNDS: [&[u64]; HISTOGRAM_COUNT] = [
    // deciles: <=9 → 0-9%, …, <=99 → 90-99%, overflow bucket = exactly 100%
    &[9, 19, 29, 39, 49, 59, 69, 79, 89, 99],
    &[1, 2, 4, 8, 16, 32, 64],
    &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024],
    PHASE_US_BOUNDS,
    PHASE_US_BOUNDS,
    PHASE_US_BOUNDS,
    PHASE_US_BOUNDS,
    PHASE_US_BOUNDS,
    PHASE_US_BOUNDS,
    PHASE_US_BOUNDS,
    PHASE_US_BOUNDS,
    // lane occupancy: powers of two up to the 64-lane plane width
    &[1, 2, 4, 8, 16, 32, 64],
    // codegen + rustc: millisecond-to-minute scale
    &[1_000, 10_000, 100_000, 1_000_000, 10_000_000, 60_000_000],
    // dlopen + meta validation: sub-ms typical, allow slow filesystems
    &[64, 256, 1024, 4096, 16384, 65536],
];

const HISTOGRAM_NAMES: [&str; HISTOGRAM_COUNT] = [
    "dirty_fraction_pct",
    "split_fanout",
    "segment_cycles",
    "phase_settle_us",
    "phase_snapshot_save_us",
    "phase_snapshot_restore_us",
    "phase_csm_check_us",
    "phase_csm_widen_us",
    "phase_sched_wait_us",
    "phase_batch_eval_us",
    "phase_event_eval_us",
    "cohort_lane_occupancy",
    "phase_codegen_us",
    "phase_load_us",
];

/// Largest bucket array any histogram needs (bounds + overflow):
/// `segment_cycles` with its 11 bounds.
const MAX_BUCKETS: usize = 12;

/// One worker's slice of the registry. Aligned to two cache lines so
/// adjacent shards never share a line and relaxed increments stay local.
#[derive(Debug)]
#[repr(align(128))]
pub struct MetricShard {
    counters: [AtomicU64; COUNTERS],
    gauges: [AtomicI64; GAUGES],
    hists: [[AtomicU64; MAX_BUCKETS]; HISTOGRAM_COUNT],
}

impl MetricShard {
    fn new() -> MetricShard {
        MetricShard {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicI64::new(0)),
            hists: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
        }
    }

    /// Adds 1 to a counter: one relaxed atomic add.
    #[inline]
    pub fn inc(&self, c: CounterId) {
        self.add(c, 1);
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&self, c: CounterId, n: u64) {
        self.counters[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Moves a gauge by `delta` (may be negative).
    #[inline]
    pub fn gauge_add(&self, g: GaugeId, delta: i64) {
        self.gauges[g as usize].fetch_add(delta, Ordering::Relaxed);
    }

    /// Stores an absolute gauge value into *this shard*. Only meaningful
    /// for gauges a single shard owns exclusively (e.g. the CSM updates
    /// its sizes under its own lock through shard 0).
    #[inline]
    pub fn gauge_set(&self, g: GaugeId, value: i64) {
        self.gauges[g as usize].store(value, Ordering::Relaxed);
    }

    /// Records `value` into the histogram's bucket.
    #[inline]
    pub fn observe(&self, h: HistogramId, value: u64) {
        let bounds = HISTOGRAM_BOUNDS[h as usize];
        let idx = bounds.partition_point(|&b| b < value);
        self.hists[h as usize][idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` pre-bucketed samples directly to bucket `bucket` — used to
    /// fold an engine-local histogram with the same layout into the
    /// registry without re-bucketing.
    #[inline]
    pub fn observe_bucket(&self, h: HistogramId, bucket: usize, n: u64) {
        let buckets = HISTOGRAM_BOUNDS[h as usize].len() + 1;
        self.hists[h as usize][bucket.min(buckets - 1)].fetch_add(n, Ordering::Relaxed);
    }
}

/// The sharded registry. See the module docs for the design.
#[derive(Debug)]
pub struct MetricsRegistry {
    shards: Box<[MetricShard]>,
}

impl MetricsRegistry {
    /// Creates a registry with `shards` shards (at least one); one per
    /// worker keeps hot-path increments contention-free.
    pub fn new(shards: usize) -> MetricsRegistry {
        MetricsRegistry {
            shards: (0..shards.max(1)).map(|_| MetricShard::new()).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard for worker `i` (wraps, so any index is safe).
    #[inline]
    pub fn shard(&self, i: usize) -> &MetricShard {
        &self.shards[i % self.shards.len()]
    }

    /// Sum of a counter across all shards.
    pub fn counter_total(&self, c: CounterId) -> u64 {
        self.shards
            .iter()
            .map(|s| s.counters[c as usize].load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of a gauge across all shards.
    pub fn gauge_total(&self, g: GaugeId) -> i64 {
        self.shards
            .iter()
            .map(|s| s.gauges[g as usize].load(Ordering::Relaxed))
            .sum()
    }

    /// Per-shard values of one counter (worker-utilization breakdowns).
    pub fn counter_per_shard(&self, c: CounterId) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.counters[c as usize].load(Ordering::Relaxed))
            .collect()
    }

    /// Aggregates every metric across shards into an owned snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = (0..COUNTERS)
            .map(|i| {
                let c: u64 = self
                    .shards
                    .iter()
                    .map(|s| s.counters[i].load(Ordering::Relaxed))
                    .sum();
                (COUNTER_NAMES[i], c)
            })
            .collect();
        let gauges = (0..GAUGES)
            .map(|i| {
                let g: i64 = self
                    .shards
                    .iter()
                    .map(|s| s.gauges[i].load(Ordering::Relaxed))
                    .sum();
                (GAUGE_NAMES[i], g)
            })
            .collect();
        let histograms = (0..HISTOGRAM_COUNT)
            .map(|i| {
                let buckets = HISTOGRAM_BOUNDS[i].len() + 1;
                let counts: Vec<u64> = (0..buckets)
                    .map(|b| {
                        self.shards
                            .iter()
                            .map(|s| s.hists[i][b].load(Ordering::Relaxed))
                            .sum()
                    })
                    .collect();
                HistogramSnapshot {
                    name: HISTOGRAM_NAMES[i],
                    bounds: HISTOGRAM_BOUNDS[i],
                    samples: counts.iter().sum(),
                    counts,
                }
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            env: None,
        }
    }
}

/// Aggregated state of one histogram at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// JSON name.
    pub name: &'static str,
    /// Inclusive upper bounds; `counts` has one extra overflow bucket.
    pub bounds: &'static [u64],
    /// Per-bucket sample counts (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Total samples recorded.
    pub samples: u64,
}

/// A point-in-time aggregation of a [`MetricsRegistry`] — the `metrics`
/// section embedded in `CoAnalysisReport` and written by `--metrics-out`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, total)` for every counter, in [`CounterId`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, total)` for every gauge, in [`GaugeId`] order.
    pub gauges: Vec<(&'static str, i64)>,
    /// Every histogram, in [`HistogramId`] order.
    pub histograms: Vec<HistogramSnapshot>,
    /// Environment fingerprint stamped at report assembly (absent on raw
    /// registry snapshots), making historical `--metrics-out` files
    /// attributable to a commit, toolchain, and host.
    pub env: Option<crate::ledger::EnvFingerprint>,
}

impl MetricsSnapshot {
    /// A counter's total by JSON name (0 when absent, e.g. on the empty
    /// default snapshot).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// A gauge's total by JSON name (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Serializes the snapshot: counters and gauges as flat top-level
    /// keys, histograms nested under `"histograms"` (the schema in
    /// `docs/schema/metrics.schema.json`). Pretty-printed for files.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (name, v) in &self.counters {
            out.push_str(&format!("  \"{name}\": {v},\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("  \"{name}\": {v},\n"));
        }
        out.push_str("  \"histograms\": {\n");
        for (i, h) in self.histograms.iter().enumerate() {
            let bounds: Vec<String> = h.bounds.iter().map(u64::to_string).collect();
            let counts: Vec<String> = h.counts.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "    \"{}\": {{ \"bounds\": [{}], \"counts\": [{}], \"samples\": {} }}{}\n",
                h.name,
                bounds.join(", "),
                counts.join(", "),
                h.samples,
                if i + 1 < self.histograms.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        out.push_str("  }");
        if let Some(env) = &self.env {
            out.push_str(&format!(",\n  \"env\": {}", env.to_json()));
        }
        out.push_str("\n}\n");
        out
    }

    /// [`MetricsSnapshot::to_json`] on a single line, for embedding inside
    /// other single-line JSON records.
    pub fn to_json_compact(&self) -> String {
        let mut out = String::from("{");
        for (name, v) in &self.counters {
            out.push_str(&format!("\"{name}\":{v},"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("\"{name}\":{v},"));
        }
        out.push_str("\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            let bounds: Vec<String> = h.bounds.iter().map(u64::to_string).collect();
            let counts: Vec<String> = h.counts.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "{}\"{}\":{{\"bounds\":[{}],\"counts\":[{}],\"samples\":{}}}",
                if i > 0 { "," } else { "" },
                h.name,
                bounds.join(","),
                counts.join(","),
                h.samples,
            ));
        }
        out.push('}');
        if let Some(env) = &self.env {
            out.push_str(&format!(",\"env\":{}", env.to_json()));
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_aggregate_across_shards() {
        let r = MetricsRegistry::new(4);
        r.shard(0).inc(CounterId::PathsCreated);
        r.shard(1).add(CounterId::PathsCreated, 2);
        r.shard(3).inc(CounterId::PathsCreated);
        r.shard(2).inc(CounterId::PathsSkipped);
        assert_eq!(r.counter_total(CounterId::PathsCreated), 4);
        assert_eq!(r.counter_total(CounterId::PathsSkipped), 1);
        assert_eq!(r.counter_per_shard(CounterId::PathsCreated), [1, 2, 0, 1]);
        let snap = r.snapshot();
        assert_eq!(snap.counter("paths_created"), 4);
        assert_eq!(snap.counter("paths_skipped"), 1);
        assert_eq!(snap.counter("cycles"), 0);
    }

    #[test]
    fn gauges_are_additive_up_down_counters() {
        let r = MetricsRegistry::new(2);
        r.shard(0).gauge_add(GaugeId::PathsLive, 3);
        r.shard(1).gauge_add(GaugeId::PathsLive, -2);
        assert_eq!(r.gauge_total(GaugeId::PathsLive), 1);
        r.shard(0).gauge_set(GaugeId::CsmStoredStates, 7);
        r.shard(0).gauge_set(GaugeId::CsmStoredStates, 5);
        assert_eq!(r.snapshot().gauge("csm_stored_states"), 5);
    }

    #[test]
    fn histogram_buckets_by_inclusive_upper_bound() {
        let r = MetricsRegistry::new(1);
        let s = r.shard(0);
        // split_fanout bounds [1, 2, 4, 8, 16, 32, 64]
        s.observe(HistogramId::SplitFanout, 1); // bucket 0
        s.observe(HistogramId::SplitFanout, 2); // bucket 1
        s.observe(HistogramId::SplitFanout, 3); // bucket 2
        s.observe(HistogramId::SplitFanout, 4); // bucket 2
        s.observe(HistogramId::SplitFanout, 1000); // overflow
        let snap = r.snapshot();
        let h = &snap.histograms[HistogramId::SplitFanout as usize];
        assert_eq!(h.name, "split_fanout");
        assert_eq!(h.samples, 5);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[2], 2);
        assert_eq!(*h.counts.last().unwrap(), 1, "overflow bucket");
    }

    #[test]
    fn dirty_fraction_deciles_match_the_engine_layout() {
        let r = MetricsRegistry::new(1);
        // the engine buckets pct as min(pct / 10, 10); the registry must
        // land the same values in the same buckets
        for pct in [0u64, 9, 10, 55, 99, 100] {
            r.shard(0).observe(HistogramId::DirtyFractionPct, pct);
            r.shard(0).observe_bucket(
                HistogramId::DirtyFractionPct,
                (pct as usize / 10).min(10),
                1,
            );
        }
        let snap = r.snapshot();
        let h = &snap.histograms[HistogramId::DirtyFractionPct as usize];
        assert_eq!(h.counts.len(), DIRTY_PCT_BUCKETS);
        assert_eq!(h.counts[0], 4, "0 and 9 via both routes");
        assert_eq!(h.counts[1], 2);
        assert_eq!(h.counts[5], 2);
        assert_eq!(h.counts[9], 2);
        assert_eq!(h.counts[10], 2, "exactly-100% bucket");
    }

    #[test]
    fn snapshot_json_is_flat_counters_plus_histograms() {
        let r = MetricsRegistry::new(2);
        r.shard(0).add(CounterId::Cycles, 42);
        r.shard(1).gauge_add(GaugeId::PathsQueued, 3);
        r.shard(0).observe(HistogramId::SegmentCycles, 10);
        let json = r.snapshot().to_json();
        assert!(json.contains("\"cycles\": 42"), "{json}");
        assert!(json.contains("\"paths_queued\": 3"), "{json}");
        assert!(json.contains("\"segment_cycles\""), "{json}");
        assert!(json.contains("\"samples\": 1"), "{json}");
        // flat keys the acceptance check greps for
        for key in ["paths_created", "paths_skipped", "cycles"] {
            assert!(json.contains(&format!("\"{key}\"")), "{json}");
        }
    }

    #[test]
    fn shard_index_wraps() {
        let r = MetricsRegistry::new(2);
        r.shard(7).inc(CounterId::SchedSteals); // lands in shard 1
        assert_eq!(r.counter_per_shard(CounterId::SchedSteals), [0, 1]);
    }
}
