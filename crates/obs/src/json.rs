//! Minimal JSON emission and parsing helpers (the build environment has no
//! serde_json; the workspace writes JSON by hand, as `bench_coanalysis`
//! already does, and the trace-analysis commands read it back through
//! [`JsonValue::parse`]).

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// An order-preserving single-line JSON object builder for NDJSON records.
#[derive(Debug, Default)]
pub struct JsonObject {
    body: String,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    fn key(&mut self, key: &str) {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        self.body.push('"');
        self.body.push_str(&escape_json(key));
        self.body.push_str("\":");
    }

    /// Adds a string member.
    pub fn str(&mut self, key: &str, value: &str) -> &mut JsonObject {
        self.key(key);
        self.body.push('"');
        self.body.push_str(&escape_json(value));
        self.body.push('"');
        self
    }

    /// Adds an unsigned integer member.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut JsonObject {
        self.key(key);
        self.body.push_str(&value.to_string());
        self
    }

    /// Adds a signed integer member.
    pub fn i64(&mut self, key: &str, value: i64) -> &mut JsonObject {
        self.key(key);
        self.body.push_str(&value.to_string());
        self
    }

    /// Adds a float member (fixed 6-decimal form: valid JSON, never NaN —
    /// non-finite inputs are clamped to 0).
    pub fn f64(&mut self, key: &str, value: f64) -> &mut JsonObject {
        self.key(key);
        let v = if value.is_finite() { value } else { 0.0 };
        self.body.push_str(&format!("{v:.6}"));
        self
    }

    /// Adds a boolean member.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut JsonObject {
        self.key(key);
        self.body.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds an array of unsigned integers.
    pub fn u64_array(&mut self, key: &str, values: &[u64]) -> &mut JsonObject {
        self.key(key);
        self.body.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.body.push(',');
            }
            self.body.push_str(&v.to_string());
        }
        self.body.push(']');
        self
    }

    /// Adds a pre-serialized JSON value verbatim (caller guarantees
    /// validity).
    pub fn raw(&mut self, key: &str, json: &str) -> &mut JsonObject {
        self.key(key);
        self.body.push_str(json);
        self
    }

    /// The finished single-line object.
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// A parsed JSON value — just enough structure for the trace-analysis
/// commands to read the NDJSON records this crate writes.
///
/// Integers without a fraction or exponent are kept exact in [`JsonValue::Int`]
/// (timestamps and path ids must not round-trip through `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (no `.` or exponent), kept exact.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member `key` of an object (`None` for other variants or a missing
    /// key).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a signed integer, if it is one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a float (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // surrogate pairs are not emitted by this crate's
                            // writers; map lone surrogates to the replacement
                            // character rather than failing the whole record
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // advance over one UTF-8 scalar
                    let start = self.pos;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Int(i));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(escape_json("plain"), "plain");
    }

    #[test]
    fn builds_ordered_objects() {
        let mut o = JsonObject::new();
        o.str("type", "heartbeat")
            .u64("seq", 3)
            .f64("elapsed_s", 1.5)
            .bool("final", false)
            .i64("delta", -2)
            .u64_array("worker_cycles", &[1, 2]);
        assert_eq!(
            o.finish(),
            "{\"type\":\"heartbeat\",\"seq\":3,\"elapsed_s\":1.500000,\
             \"final\":false,\"delta\":-2,\"worker_cycles\":[1,2]}"
        );
    }

    #[test]
    fn non_finite_floats_stay_valid_json() {
        let mut o = JsonObject::new();
        o.f64("x", f64::NAN);
        assert_eq!(o.finish(), "{\"x\":0.000000}");
    }

    #[test]
    fn parser_round_trips_builder_output() {
        let mut o = JsonObject::new();
        o.str("type", "x\"y\n")
            .u64("big", u64::MAX / 4)
            .i64("neg", -3)
            .f64("f", 1.5)
            .bool("b", true)
            .u64_array("a", &[1, 2]);
        let v = JsonValue::parse(&o.finish()).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("x\"y\n"));
        assert_eq!(v.get("big").unwrap().as_u64(), Some(u64::MAX / 4));
        assert_eq!(v.get("neg").unwrap().as_i64(), Some(-3));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("b"), Some(&JsonValue::Bool(true)));
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a[1].as_u64(), Some(2));
    }

    #[test]
    fn parser_handles_nesting_null_and_errors() {
        let v = JsonValue::parse(r#"{"a": {"b": [null, {"c": 1e2}]}, "d": []}"#).unwrap();
        let b = v.get("a").unwrap().get("b").unwrap().as_array().unwrap();
        assert_eq!(b[0], JsonValue::Null);
        assert_eq!(b[1].get("c").unwrap().as_f64(), Some(100.0));
        assert_eq!(v.get("d").unwrap().as_array().unwrap().len(), 0);
        assert!(JsonValue::parse("{\"a\":").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{} extra").is_err());
        assert!(JsonValue::parse("\"\\u0041\"").unwrap().as_str() == Some("A"));
    }
}
