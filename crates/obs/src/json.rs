//! Minimal JSON emission helpers (the build environment has no serde_json;
//! the workspace writes JSON by hand, as `bench_coanalysis` already does).

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// An order-preserving single-line JSON object builder for NDJSON records.
#[derive(Debug, Default)]
pub struct JsonObject {
    body: String,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    fn key(&mut self, key: &str) {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        self.body.push('"');
        self.body.push_str(&escape_json(key));
        self.body.push_str("\":");
    }

    /// Adds a string member.
    pub fn str(&mut self, key: &str, value: &str) -> &mut JsonObject {
        self.key(key);
        self.body.push('"');
        self.body.push_str(&escape_json(value));
        self.body.push('"');
        self
    }

    /// Adds an unsigned integer member.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut JsonObject {
        self.key(key);
        self.body.push_str(&value.to_string());
        self
    }

    /// Adds a signed integer member.
    pub fn i64(&mut self, key: &str, value: i64) -> &mut JsonObject {
        self.key(key);
        self.body.push_str(&value.to_string());
        self
    }

    /// Adds a float member (fixed 6-decimal form: valid JSON, never NaN —
    /// non-finite inputs are clamped to 0).
    pub fn f64(&mut self, key: &str, value: f64) -> &mut JsonObject {
        self.key(key);
        let v = if value.is_finite() { value } else { 0.0 };
        self.body.push_str(&format!("{v:.6}"));
        self
    }

    /// Adds a boolean member.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut JsonObject {
        self.key(key);
        self.body.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds an array of unsigned integers.
    pub fn u64_array(&mut self, key: &str, values: &[u64]) -> &mut JsonObject {
        self.key(key);
        self.body.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.body.push(',');
            }
            self.body.push_str(&v.to_string());
        }
        self.body.push(']');
        self
    }

    /// Adds a pre-serialized JSON value verbatim (caller guarantees
    /// validity).
    pub fn raw(&mut self, key: &str, json: &str) -> &mut JsonObject {
        self.key(key);
        self.body.push_str(json);
        self
    }

    /// The finished single-line object.
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(escape_json("plain"), "plain");
    }

    #[test]
    fn builds_ordered_objects() {
        let mut o = JsonObject::new();
        o.str("type", "heartbeat")
            .u64("seq", 3)
            .f64("elapsed_s", 1.5)
            .bool("final", false)
            .i64("delta", -2)
            .u64_array("worker_cycles", &[1, 2]);
        assert_eq!(
            o.finish(),
            "{\"type\":\"heartbeat\",\"seq\":3,\"elapsed_s\":1.500000,\
             \"final\":false,\"delta\":-2,\"worker_cycles\":[1,2]}"
        );
    }

    #[test]
    fn non_finite_floats_stay_valid_json() {
        let mut o = JsonObject::new();
        o.f64("x", f64::NAN);
        assert_eq!(o.finish(), "{\"x\":0.000000}");
    }
}
