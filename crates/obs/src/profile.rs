//! Phase profiler: names the hot phases of a co-analysis run and maps each
//! to its metrics-registry histogram.
//!
//! The profiler is deliberately passive — it owns no clocks. Call sites
//! time themselves (only when a trace sink is installed or profiling is
//! explicitly enabled, so the hot path takes no timestamps by default) and
//! feed microsecond durations here, either into the per-worker registry
//! shard via [`Phase::histogram`] or into a local [`PhaseTotals`] that is
//! folded into a trace record at segment end.

use crate::metrics::{HistogramId, MetricShard};

/// A hot phase of the co-analysis pipeline. Order is stable and is the
/// index into [`PhaseTotals`]; names appear in trace records and the
/// `symsim trace` hot-spot tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Engine settle: Active-region propagation until quiescent.
    Settle = 0,
    /// Snapshot save at a nondeterministic halt.
    SnapshotSave,
    /// Snapshot restore when a worker claims a path.
    SnapshotRestore,
    /// CSM subset (cover) check under the CSM lock.
    CsmCheck,
    /// CSM merge/widen of a new conservative state.
    CsmWiden,
    /// Time a worker spent blocked in the scheduler waiting for a task.
    SchedWait,
    /// Batched level-tape evaluation inside settle.
    BatchEval,
    /// Scalar event-driven evaluation inside settle.
    EventEval,
}

/// Number of phases; sizes [`PhaseTotals`].
pub const PHASE_COUNT: usize = Phase::EventEval as usize + 1;

/// Every phase, in index order.
pub const ALL_PHASES: [Phase; PHASE_COUNT] = [
    Phase::Settle,
    Phase::SnapshotSave,
    Phase::SnapshotRestore,
    Phase::CsmCheck,
    Phase::CsmWiden,
    Phase::SchedWait,
    Phase::BatchEval,
    Phase::EventEval,
];

impl Phase {
    /// Stable snake_case name used in trace records and CLI tables.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Settle => "settle",
            Phase::SnapshotSave => "snapshot_save",
            Phase::SnapshotRestore => "snapshot_restore",
            Phase::CsmCheck => "csm_check",
            Phase::CsmWiden => "csm_widen",
            Phase::SchedWait => "sched_wait",
            Phase::BatchEval => "batch_eval",
            Phase::EventEval => "event_eval",
        }
    }

    /// The registry histogram this phase's per-occurrence µs land in.
    pub fn histogram(self) -> HistogramId {
        match self {
            Phase::Settle => HistogramId::PhaseSettleUs,
            Phase::SnapshotSave => HistogramId::PhaseSaveUs,
            Phase::SnapshotRestore => HistogramId::PhaseRestoreUs,
            Phase::CsmCheck => HistogramId::PhaseCsmCheckUs,
            Phase::CsmWiden => HistogramId::PhaseCsmWidenUs,
            Phase::SchedWait => HistogramId::PhaseSchedWaitUs,
            Phase::BatchEval => HistogramId::PhaseBatchEvalUs,
            Phase::EventEval => HistogramId::PhaseEventEvalUs,
        }
    }

    /// Parses a [`Phase::name`] back; used by the trace reader.
    pub fn from_name(name: &str) -> Option<Phase> {
        ALL_PHASES.iter().copied().find(|p| p.name() == name)
    }
}

/// Per-segment (or per-worker) accumulated phase time in microseconds,
/// indexed by [`Phase`]. Plain integers — callers own any synchronization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    us: [u64; PHASE_COUNT],
}

impl PhaseTotals {
    /// All-zero totals.
    pub fn new() -> PhaseTotals {
        PhaseTotals::default()
    }

    /// Adds `us` microseconds to `phase`.
    #[inline]
    pub fn add(&mut self, phase: Phase, us: u64) {
        self.us[phase as usize] += us;
    }

    /// Microseconds accumulated for `phase`.
    #[inline]
    pub fn get(&self, phase: Phase) -> u64 {
        self.us[phase as usize]
    }

    /// Folds another totals in (e.g. segment totals into worker totals).
    pub fn merge(&mut self, other: &PhaseTotals) {
        for i in 0..PHASE_COUNT {
            self.us[i] += other.us[i];
        }
    }

    /// Sum over all phases, µs.
    pub fn total_us(&self) -> u64 {
        self.us.iter().sum()
    }

    /// `(phase, µs)` pairs in index order, including zero entries.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, u64)> + '_ {
        ALL_PHASES.iter().map(move |&p| (p, self.us[p as usize]))
    }

    /// Records each nonzero phase into its histogram on `shard` — one
    /// observation per phase per segment, matching the histogram units.
    pub fn observe_into(&self, shard: &MetricShard) {
        for (phase, us) in self.iter() {
            if us > 0 {
                shard.observe(phase.histogram(), us);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_are_unique() {
        for p in ALL_PHASES {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        let mut names: Vec<&str> = ALL_PHASES.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PHASE_COUNT);
    }

    #[test]
    fn totals_merge_and_sum() {
        let mut a = PhaseTotals::new();
        a.add(Phase::Settle, 5);
        a.add(Phase::CsmCheck, 2);
        let mut b = PhaseTotals::new();
        b.add(Phase::Settle, 1);
        b.add(Phase::SchedWait, 10);
        a.merge(&b);
        assert_eq!(a.get(Phase::Settle), 6);
        assert_eq!(a.get(Phase::SchedWait), 10);
        assert_eq!(a.total_us(), 18);
        assert_eq!(a.iter().count(), PHASE_COUNT);
    }
}
