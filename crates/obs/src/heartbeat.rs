//! Periodic NDJSON progress records from a shared [`MetricsRegistry`].
//!
//! One record per interval plus a guaranteed final record on shutdown, so
//! a run shorter than the interval still emits at least one line. Schema:
//! `docs/schema/heartbeat.schema.json`.

use std::io::Write;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::json::JsonObject;
use crate::metrics::{CounterId, GaugeId, MetricsRegistry};

/// Where heartbeat records go.
pub enum HeartbeatOut {
    /// One NDJSON line per beat on standard error.
    Stderr,
    /// One NDJSON line per beat to the given writer (`--progress-out`).
    Writer(Box<dyn Write + Send>),
}

impl std::fmt::Debug for HeartbeatOut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            HeartbeatOut::Stderr => "Stderr",
            HeartbeatOut::Writer(_) => "Writer(..)",
        })
    }
}

/// Handle to a running heartbeat thread; emits the final record and joins
/// on [`Heartbeat::stop`] or drop.
#[derive(Debug)]
pub struct Heartbeat {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl Heartbeat {
    /// Spawns the heartbeat thread. `interval` is clamped to ≥ 10 ms.
    pub fn start(
        registry: Arc<MetricsRegistry>,
        interval: Duration,
        out: HeartbeatOut,
    ) -> Heartbeat {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop_thread = Arc::clone(&stop);
        let interval = interval.max(Duration::from_millis(10));
        let handle = std::thread::Builder::new()
            .name("symsim-heartbeat".into())
            .spawn(move || beat_loop(&registry, interval, out, &stop_thread))
            .expect("spawn heartbeat thread");
        Heartbeat {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the thread, which emits one final record (`"final": true`)
    /// and exits; blocks until it has.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        {
            let (lock, cv) = &*self.stop;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn beat_loop(
    registry: &MetricsRegistry,
    interval: Duration,
    mut out: HeartbeatOut,
    stop: &(Mutex<bool>, Condvar),
) {
    let started = Instant::now();
    let mut seq = 0u64;
    let mut last = Snapshot::take(registry, started);
    let (lock, cv) = stop;
    let mut stopped = lock.lock().unwrap();
    loop {
        // condvar wait with a deadline: stop() wakes us immediately, and
        // emitting while still holding the lock means the final record can
        // never race a late periodic one — whichever record observes the
        // flag set is, by construction, the last record emitted
        let deadline = Instant::now() + interval;
        while !*stopped {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            stopped = cv.wait_timeout(stopped, deadline - now).unwrap().0;
        }
        let fin = *stopped;
        let now = Snapshot::take(registry, started);
        emit(&mut out, seq, &last, &now, fin);
        seq += 1;
        last = now;
        if fin {
            return;
        }
    }
}

/// The quantities a record reports, sampled atomically enough for progress
/// display (individual metrics are relaxed reads).
struct Snapshot {
    elapsed_s: f64,
    cycles: u64,
    paths_created: u64,
    paths_skipped: u64,
    paths_finished: u64,
    paths_live: i64,
    paths_queued: i64,
    csm_states: i64,
    csm_pcs: i64,
    steals: u64,
    worker_cycles: Vec<u64>,
}

impl Snapshot {
    fn take(registry: &MetricsRegistry, started: Instant) -> Snapshot {
        Snapshot {
            elapsed_s: started.elapsed().as_secs_f64(),
            cycles: registry.counter_total(CounterId::Cycles),
            paths_created: registry.counter_total(CounterId::PathsCreated),
            paths_skipped: registry.counter_total(CounterId::PathsSkipped),
            paths_finished: registry.counter_total(CounterId::PathsFinished),
            paths_live: registry.gauge_total(GaugeId::PathsLive),
            paths_queued: registry.gauge_total(GaugeId::PathsQueued),
            csm_states: registry.gauge_total(GaugeId::CsmStoredStates),
            csm_pcs: registry.gauge_total(GaugeId::CsmDistinctPcs),
            steals: registry.counter_total(CounterId::SchedSteals),
            worker_cycles: registry.counter_per_shard(CounterId::Cycles),
        }
    }
}

fn emit(out: &mut HeartbeatOut, seq: u64, last: &Snapshot, now: &Snapshot, fin: bool) {
    let dt = (now.elapsed_s - last.elapsed_s).max(1e-9);
    let cps = (now.cycles.saturating_sub(last.cycles)) as f64 / dt;
    // per-worker share of the cycles simulated this interval: a cheap
    // utilization proxy (idle or parked workers show 0)
    let interval_cycles: Vec<u64> = now
        .worker_cycles
        .iter()
        .zip(last.worker_cycles.iter().chain(std::iter::repeat(&0)))
        .map(|(n, l)| n.saturating_sub(*l))
        .collect();
    let mut o = JsonObject::new();
    o.str("type", "heartbeat")
        .u64("seq", seq)
        .f64("elapsed_s", now.elapsed_s)
        .u64("cycles", now.cycles)
        .f64("cycles_per_sec", cps)
        .u64("paths_created", now.paths_created)
        .u64("paths_skipped", now.paths_skipped)
        .u64("paths_finished", now.paths_finished)
        .i64("paths_live", now.paths_live)
        .i64("paths_queued", now.paths_queued)
        .i64("csm_states", now.csm_states)
        .i64("csm_distinct_pcs", now.csm_pcs)
        .u64("sched_steals", now.steals)
        .u64_array("worker_cycles", &interval_cycles)
        .bool("final", fin);
    let line = o.finish();
    match out {
        HeartbeatOut::Stderr => eprintln!("{line}"),
        HeartbeatOut::Writer(w) => {
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex;

    use super::*;

    /// A `Write` the test can inspect after the heartbeat thread exits.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn sub_interval_run_still_emits_a_final_record() {
        let registry = Arc::new(MetricsRegistry::new(2));
        registry.shard(0).add(CounterId::Cycles, 123);
        registry.shard(1).inc(CounterId::PathsCreated);
        let buf = SharedBuf::default();
        let hb = Heartbeat::start(
            registry,
            Duration::from_secs(3600),
            HeartbeatOut::Writer(Box::new(buf.clone())),
        );
        hb.stop();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines.is_empty(), "at least one NDJSON record: {text:?}");
        let last = lines.last().unwrap();
        assert!(last.contains("\"type\":\"heartbeat\""), "{last}");
        assert!(last.contains("\"cycles\":123"), "{last}");
        assert!(last.contains("\"paths_created\":1"), "{last}");
        assert!(last.contains("\"final\":true"), "{last}");
        assert!(last.starts_with('{') && last.ends_with('}'), "{last}");
    }

    #[test]
    fn periodic_records_report_interval_throughput() {
        let registry = Arc::new(MetricsRegistry::new(1));
        let buf = SharedBuf::default();
        let hb = Heartbeat::start(
            registry.clone(),
            Duration::from_millis(20),
            HeartbeatOut::Writer(Box::new(buf.clone())),
        );
        registry.shard(0).add(CounterId::Cycles, 1000);
        std::thread::sleep(Duration::from_millis(90));
        hb.stop();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 2, "periodic + final records: {text:?}");
        assert!(text.contains("\"cycles\":1000"), "{text}");
        assert!(text.contains("\"worker_cycles\":["), "{text}");
    }
}
