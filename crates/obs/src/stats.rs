//! Robust statistics for noise-aware regression gating.
//!
//! Wall-clock measurements of the same run jitter; a regression gate that
//! compares raw numbers flaps. Every comparison in the repo therefore goes
//! through one of two shared bands:
//!
//! * the **smoke band** ([`within_smoke_noise`]) — the fixed
//!   relative-plus-absolute allowance the bench `--smoke` overhead checks
//!   have used since PR 4 (traced-vs-untraced) and PR 9 (attribution
//!   off-vs-on), now defined once here, and
//! * the **MAD band** ([`noise_band`]) — a median-absolute-deviation band
//!   around the median of a baseline population, used by the run-ledger
//!   diff (`symsim runs diff`) where several baseline samples exist. The
//!   MAD is scaled by 1.4826 (the consistency constant that makes it
//!   estimate a normal σ), widened by `k`, and floored by a relative and
//!   an absolute allowance so a single-sample baseline (MAD = 0) still
//!   yields the smoke band rather than a zero-width gate.

/// Relative allowance of the smoke overhead checks: the candidate may be
/// up to 25% slower than the reference before the check trips.
pub const SMOKE_NOISE_REL: f64 = 0.25;

/// Absolute allowance of the smoke overhead checks, in seconds — sub-100ms
/// runs are dominated by scheduler jitter, not by the code under test.
pub const SMOKE_NOISE_ABS_S: f64 = 0.1;

/// Consistency constant: `1.4826 * MAD` estimates the standard deviation
/// of normally distributed samples.
pub const MAD_SIGMA: f64 = 1.4826;

/// True when `candidate_s` is within the shared smoke noise band of
/// `reference_s` (both wall-clock seconds, smaller is better): the
/// candidate may exceed the reference by [`SMOKE_NOISE_REL`] relatively
/// plus [`SMOKE_NOISE_ABS_S`] absolutely.
pub fn within_smoke_noise(reference_s: f64, candidate_s: f64) -> bool {
    candidate_s <= reference_s * (1.0 + SMOKE_NOISE_REL) + SMOKE_NOISE_ABS_S
}

/// Median of `values` (0 for an empty slice). Sorts a copy; ties average.
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Median absolute deviation from the median of `values`.
pub fn mad(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = median(values);
    let dev: Vec<f64> = values.iter().map(|v| (v - m).abs()).collect();
    median(&dev)
}

/// A noise band around the median of a baseline population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseBand {
    /// Median of the baseline samples.
    pub center: f64,
    /// Half-width: a candidate within `center ± width` is "no change".
    pub width: f64,
}

impl NoiseBand {
    /// True when `value` exceeds the band upward (worse for
    /// smaller-is-better metrics like wall time).
    pub fn above(&self, value: f64) -> bool {
        value > self.center + self.width
    }

    /// True when `value` falls below the band (worse for larger-is-better
    /// metrics like throughput).
    pub fn below(&self, value: f64) -> bool {
        value < self.center - self.width
    }
}

/// The MAD noise band of a baseline population: half-width
/// `max(k · 1.4826 · MAD, rel_floor · |median|, abs_floor)`.
///
/// The floors keep the gate sane when the baseline is a single sample
/// (MAD = 0) or the metric is tiny.
pub fn noise_band(baseline: &[f64], k: f64, rel_floor: f64, abs_floor: f64) -> NoiseBand {
    let center = median(baseline);
    let sigma = MAD_SIGMA * mad(baseline);
    let width = (k * sigma).max(rel_floor * center.abs()).max(abs_floor);
    NoiseBand { center, width }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_odd_even_empty() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn mad_is_robust_to_one_outlier() {
        // median 10, deviations [0, 1, 1, 90] -> MAD 1
        assert_eq!(mad(&[9.0, 10.0, 11.0, 100.0]), 1.0);
        assert_eq!(mad(&[7.0]), 0.0);
    }

    #[test]
    fn band_floors_apply_on_tight_baselines() {
        // single sample: MAD = 0, so the relative floor rules
        let b = noise_band(&[2.0], 3.0, 0.25, 0.05);
        assert_eq!(b.center, 2.0);
        assert_eq!(b.width, 0.5);
        assert!(!b.above(2.4));
        assert!(b.above(2.6));
        assert!(b.below(1.4));
        // tiny metric: the absolute floor rules
        let b = noise_band(&[0.01], 3.0, 0.25, 0.05);
        assert_eq!(b.width, 0.05);
    }

    #[test]
    fn band_widens_with_spread() {
        let samples = [10.0, 12.0, 11.0, 9.0, 10.5];
        let b = noise_band(&samples, 3.0, 0.0, 0.0);
        // median 10.5, MAD = median([0.5, 1.5, 0.5, 1.5, 0]) = 0.5
        assert_eq!(b.center, 10.5);
        assert!((b.width - 3.0 * MAD_SIGMA * 0.5).abs() < 1e-9);
    }

    #[test]
    fn smoke_band_matches_the_historic_check() {
        assert!(within_smoke_noise(1.0, 1.0));
        assert!(within_smoke_noise(1.0, 1.34));
        assert!(!within_smoke_noise(1.0, 1.36));
        // tiny runs are covered by the absolute allowance
        assert!(within_smoke_noise(0.01, 0.1));
    }
}
