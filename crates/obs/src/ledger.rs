//! The persistent run ledger: one self-contained NDJSON record per
//! co-analysis run, appended to `$SYMSIM_LEDGER` (default
//! `.symsim/ledger.ndjson`).
//!
//! Each record carries everything a later `symsim runs diff` needs to
//! decide "did this change regress throughput or drift a verdict?" without
//! re-running anything: the design/program/config fingerprint that makes
//! runs comparable, the environment fingerprint that makes them
//! attributable, the canonical verdict digest (order-independent hash of
//! the exercisable-gate set — eval modes and CSM policies may change
//! speed, never this), the headline throughput numbers, and the full
//! metrics-registry snapshot including the phase histograms.
//!
//! Appending costs nothing on the hot path: the record is serialized once
//! at report-assembly time through the same [`crate::JsonObject`] builder
//! every other NDJSON artifact uses, and the file is opened in append mode
//! per record so concurrent runs interleave whole lines.
//!
//! [`compare`] implements the regression policy shared by `symsim runs
//! diff`, `symsim runs regressions`, and the CI perf gate: verdict drift
//! is a hard failure, counter deltas are reported, and wall-time /
//! throughput / phase-time movements are judged against the MAD-based
//! noise band of the baseline population ([`crate::stats`]).

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::{JsonObject, JsonValue};
use crate::stats::{self, NoiseBand};

/// Wire-format version tag carried by every record.
pub const LEDGER_SCHEMA: &str = "symsim-ledger-v1";

/// Environment variable overriding the ledger destination. Set to `off`,
/// `none`, `0`, or the empty string to disable appending entirely.
pub const LEDGER_ENV: &str = "SYMSIM_LEDGER";

/// Default ledger location, relative to the working directory.
pub const LEDGER_DEFAULT: &str = ".symsim/ledger.ndjson";

// ---------------------------------------------------------------------------
// Environment fingerprint
// ---------------------------------------------------------------------------

/// Where a run executed: enough to attribute historical records to a
/// machine and toolchain. Captured once per process (the `git`/`rustc`
/// probes fork a subprocess) and reused for every report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvFingerprint {
    /// Short git commit of the working tree (`unknown` outside a repo).
    pub git_commit: String,
    /// `rustc -V` of the toolchain on `$PATH` (honors `$SYMSIM_RUSTC`,
    /// the same override the compiled backend uses).
    pub rustc: String,
    /// Host triple approximation: `arch-os` from the running binary.
    pub host: String,
    /// Worker threads the run was configured with.
    pub workers: usize,
}

impl EnvFingerprint {
    /// The fingerprint as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.str("git_commit", &self.git_commit)
            .str("rustc", &self.rustc)
            .str("host", &self.host)
            .u64("workers", self.workers as u64);
        o.finish()
    }
}

fn probe(cmd: &str, args: &[&str]) -> Option<String> {
    let out = std::process::Command::new(cmd).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8_lossy(&out.stdout).trim().to_string();
    (!text.is_empty()).then_some(text)
}

/// Captures the environment fingerprint for a run with `workers` worker
/// threads. The subprocess probes (`git rev-parse`, `rustc -V`) run once
/// per process and are cached — report assembly stays cheap.
pub fn env_fingerprint(workers: usize) -> EnvFingerprint {
    static GIT: OnceLock<String> = OnceLock::new();
    static RUSTC: OnceLock<String> = OnceLock::new();
    let git = GIT.get_or_init(|| {
        probe("git", &["rev-parse", "--short=12", "HEAD"]).unwrap_or_else(|| "unknown".into())
    });
    let rustc = RUSTC.get_or_init(|| {
        let rustc = std::env::var("SYMSIM_RUSTC").unwrap_or_else(|_| "rustc".into());
        probe(&rustc, &["-V"]).unwrap_or_else(|| "unknown".into())
    });
    EnvFingerprint {
        git_commit: git.clone(),
        rustc: rustc.clone(),
        host: format!("{}-{}", std::env::consts::ARCH, std::env::consts::OS),
        workers,
    }
}

// ---------------------------------------------------------------------------
// Record writing
// ---------------------------------------------------------------------------

/// One run, ready to append: every field the ledger schema
/// (`docs/schema/ledger.schema.json`) records.
#[derive(Debug, Clone)]
pub struct LedgerRecord {
    /// `analyze` (CLI) or `bench` (`bench_coanalysis`).
    pub kind: String,
    /// Human-readable run label (`omsp16/div`, a design name, ...).
    pub label: String,
    /// Design name from the netlist.
    pub design: String,
    /// Combined design + program + config fingerprint (hex).
    pub fingerprint: String,
    /// Design-structure content hash (hex).
    pub design_hash: String,
    /// Program-image content hash (hex).
    pub program_hash: String,
    /// Canonical config string the fingerprint folds in.
    pub config: String,
    /// Effective evaluation mode the run executed under.
    pub eval_mode: String,
    /// Order-independent hash of the exercisable-gate set (hex).
    pub verdict_digest: String,
    /// Total gates in the design.
    pub total_gates: u64,
    /// Exercisable gates — the verdict headline.
    pub exercisable_gates: u64,
    /// Paths created / skipped / finished / dropped, for quick scans.
    pub paths_created: u64,
    /// Paths skipped (covered by a conservative state).
    pub paths_skipped: u64,
    /// Paths that ran to completion.
    pub paths_finished: u64,
    /// Children dropped by the path cap.
    pub paths_dropped: u64,
    /// Total simulated cycles.
    pub simulated_cycles: u64,
    /// Wall-clock seconds of the analysis.
    pub wall_seconds: f64,
    /// `simulated_cycles / wall_seconds`.
    pub cycles_per_sec: f64,
    /// Environment fingerprint.
    pub env: EnvFingerprint,
    /// Full metrics snapshot as compact JSON (counters, gauges, phase
    /// histograms) — pre-serialized by the caller, embedded verbatim.
    pub metrics_json: String,
}

impl LedgerRecord {
    /// Serializes the record as one NDJSON line (no trailing newline),
    /// stamping the current wall-clock time.
    pub fn to_json(&self) -> String {
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64);
        let mut o = JsonObject::new();
        o.str("schema", LEDGER_SCHEMA)
            .u64("ts_ms", ts_ms)
            .str("kind", &self.kind)
            .str("label", &self.label)
            .str("design", &self.design)
            .str("fingerprint", &self.fingerprint)
            .str("design_hash", &self.design_hash)
            .str("program_hash", &self.program_hash)
            .str("config", &self.config)
            .str("eval_mode", &self.eval_mode)
            .str("verdict_digest", &self.verdict_digest)
            .u64("total_gates", self.total_gates)
            .u64("exercisable_gates", self.exercisable_gates)
            .u64("paths_created", self.paths_created)
            .u64("paths_skipped", self.paths_skipped)
            .u64("paths_finished", self.paths_finished)
            .u64("paths_dropped", self.paths_dropped)
            .u64("simulated_cycles", self.simulated_cycles)
            .f64("wall_seconds", self.wall_seconds)
            .f64("cycles_per_sec", self.cycles_per_sec)
            .raw("env", &self.env.to_json())
            .raw("metrics", &self.metrics_json);
        o.finish()
    }
}

/// Resolves where runs should append: an explicit `flag` wins (the CLI's
/// `--ledger`), then [`LEDGER_ENV`], then [`LEDGER_DEFAULT`]. `off`,
/// `none`, `0`, and the empty string disable appending (`None`).
pub fn resolve_path(flag: Option<&str>) -> Option<PathBuf> {
    let spec = match flag {
        Some(s) => s.to_string(),
        None => match std::env::var(LEDGER_ENV) {
            Ok(v) => v,
            Err(_) => LEDGER_DEFAULT.to_string(),
        },
    };
    match spec.as_str() {
        "" | "off" | "none" | "0" => None,
        _ => Some(PathBuf::from(spec)),
    }
}

/// Appends one record to the ledger at `path`, creating parent
/// directories on first use. Whole-line appends keep concurrent writers
/// from corrupting each other's records.
pub fn append(path: &Path, record: &LedgerRecord) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    let mut line = record.to_json();
    line.push('\n');
    let mut file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    file.write_all(line.as_bytes())
        .map_err(|e| format!("cannot append to {}: {e}", path.display()))
}

// ---------------------------------------------------------------------------
// Record reading
// ---------------------------------------------------------------------------

/// One parsed ledger record. Typed fields cover everything the diff
/// policy reads; `metrics` keeps the full snapshot for counter deltas and
/// phase estimates.
#[derive(Debug, Clone)]
pub struct LedgerEntry {
    /// Millisecond UNIX timestamp the record was appended at.
    pub ts_ms: u64,
    /// `analyze` or `bench`.
    pub kind: String,
    /// Run label.
    pub label: String,
    /// Design name.
    pub design: String,
    /// Combined fingerprint (hex).
    pub fingerprint: String,
    /// Canonical config string.
    pub config: String,
    /// Effective eval mode.
    pub eval_mode: String,
    /// Verdict digest (hex).
    pub verdict_digest: String,
    /// Total gates.
    pub total_gates: u64,
    /// Exercisable gates.
    pub exercisable_gates: u64,
    /// Simulated cycles.
    pub simulated_cycles: u64,
    /// Wall seconds.
    pub wall_seconds: f64,
    /// Cycles per second.
    pub cycles_per_sec: f64,
    /// Environment fingerprint.
    pub env: EnvFingerprint,
    /// The embedded metrics snapshot (parsed JSON object).
    pub metrics: JsonValue,
}

impl LedgerEntry {
    /// Parses one NDJSON line.
    pub fn from_json(line: &str) -> Result<LedgerEntry, String> {
        let v = JsonValue::parse(line)?;
        let s = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(String::from)
                .ok_or_else(|| format!("ledger record missing string {key:?}"))
        };
        let u = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("ledger record missing integer {key:?}"))
        };
        let f = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("ledger record missing number {key:?}"))
        };
        let schema = s("schema")?;
        if schema != LEDGER_SCHEMA {
            return Err(format!("unsupported ledger schema {schema:?}"));
        }
        let env = v.get("env").ok_or("ledger record missing env")?;
        let env_s = |key: &str| -> Result<String, String> {
            env.get(key)
                .and_then(JsonValue::as_str)
                .map(String::from)
                .ok_or_else(|| format!("ledger env missing {key:?}"))
        };
        Ok(LedgerEntry {
            ts_ms: u("ts_ms")?,
            kind: s("kind")?,
            label: s("label")?,
            design: s("design")?,
            fingerprint: s("fingerprint")?,
            config: s("config")?,
            eval_mode: s("eval_mode")?,
            verdict_digest: s("verdict_digest")?,
            total_gates: u("total_gates")?,
            exercisable_gates: u("exercisable_gates")?,
            simulated_cycles: u("simulated_cycles")?,
            wall_seconds: f("wall_seconds")?,
            cycles_per_sec: f("cycles_per_sec")?,
            env: EnvFingerprint {
                git_commit: env_s("git_commit")?,
                rustc: env_s("rustc")?,
                host: env_s("host")?,
                workers: env
                    .get("workers")
                    .and_then(JsonValue::as_u64)
                    .ok_or("ledger env missing workers")? as usize,
            },
            metrics: v
                .get("metrics")
                .cloned()
                .ok_or("ledger record missing metrics")?,
        })
    }

    /// Flat numeric metrics (counters and gauges) of the embedded
    /// snapshot, in document order; histograms are skipped.
    pub fn metric_values(&self) -> Vec<(String, i64)> {
        let JsonValue::Object(members) = &self.metrics else {
            return Vec::new();
        };
        members
            .iter()
            .filter_map(|(k, v)| v.as_i64().map(|n| (k.clone(), n)))
            .collect()
    }

    /// Estimated total microseconds per `phase_*` histogram, from bucket
    /// counts × bucket midpoints (overflow counts at 2× the last bound).
    /// Coarse by construction — good enough to flag a phase that doubled,
    /// meaningless below the bucket resolution.
    pub fn phase_estimates_us(&self) -> Vec<(String, f64)> {
        let Some(JsonValue::Object(hists)) = self.metrics.get("histograms") else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (name, h) in hists {
            if !name.starts_with("phase_") {
                continue;
            }
            let (Some(bounds), Some(counts)) = (
                h.get("bounds").and_then(JsonValue::as_array),
                h.get("counts").and_then(JsonValue::as_array),
            ) else {
                continue;
            };
            let bounds: Vec<f64> = bounds.iter().filter_map(JsonValue::as_f64).collect();
            let mut total = 0.0;
            let mut lower = 0.0;
            for (i, c) in counts.iter().filter_map(JsonValue::as_f64).enumerate() {
                let mid = match bounds.get(i) {
                    Some(&upper) => (lower + upper) / 2.0,
                    None => bounds.last().copied().unwrap_or(0.0) * 2.0,
                };
                total += c * mid;
                lower = bounds.get(i).copied().unwrap_or(lower);
            }
            out.push((name.clone(), total));
        }
        out
    }
}

/// Reads every record of an NDJSON ledger file, in append order. A record
/// that fails to parse fails the whole read — a corrupt ledger should be
/// noticed, not silently truncated.
pub fn read(path: &Path) -> Result<Vec<LedgerEntry>, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(n, l)| {
            LedgerEntry::from_json(l).map_err(|e| format!("{}:{}: {e}", path.display(), n + 1))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Regression policy
// ---------------------------------------------------------------------------

/// Tunables of the [`compare`] policy. The defaults reuse the smoke
/// noise allowances ([`stats::SMOKE_NOISE_REL`] / [`stats::SMOKE_NOISE_ABS_S`])
/// as floors under the MAD band, so a single-sample baseline degrades to
/// exactly the band the bench smoke checks have always used.
#[derive(Debug, Clone, Copy)]
pub struct DiffOpts {
    /// MAD multiplier `k` of the noise band.
    pub mad_k: f64,
    /// Relative floor on the wall-time / throughput band.
    pub rel_floor: f64,
    /// Absolute floor on the wall-time band, seconds.
    pub wall_abs_floor_s: f64,
    /// Relative floor on phase-estimate bands (the estimates are coarse,
    /// so the floor is wide).
    pub phase_rel_floor: f64,
    /// Absolute floor on phase-estimate bands, microseconds.
    pub phase_abs_floor_us: f64,
}

impl Default for DiffOpts {
    fn default() -> DiffOpts {
        DiffOpts {
            mad_k: 3.0,
            rel_floor: stats::SMOKE_NOISE_REL,
            wall_abs_floor_s: stats::SMOKE_NOISE_ABS_S,
            phase_rel_floor: 0.5,
            phase_abs_floor_us: 500.0,
        }
    }
}

/// One counter that moved between baseline and current.
#[derive(Debug, Clone)]
pub struct CounterDelta {
    /// Metric name.
    pub name: String,
    /// Median of the baseline values.
    pub baseline: i64,
    /// Current value.
    pub current: i64,
}

/// One noise-banded performance check.
#[derive(Debug, Clone)]
pub struct PerfCheck {
    /// Metric name (`wall_seconds`, `cycles_per_sec`, `phase_*`).
    pub metric: String,
    /// Baseline band.
    pub band: NoiseBand,
    /// Current value.
    pub current: f64,
    /// True when higher values are better (throughput).
    pub higher_is_better: bool,
    /// Current is outside the band on the bad side.
    pub regressed: bool,
    /// Current is outside the band on the good side.
    pub improved: bool,
}

/// The verdict comparison of a diff.
#[derive(Debug, Clone)]
pub struct VerdictDrift {
    /// Baseline digest (hex).
    pub baseline_digest: String,
    /// Current digest (hex).
    pub current_digest: String,
    /// Baseline exercisable-gate count.
    pub baseline_gates: u64,
    /// Current exercisable-gate count.
    pub current_gates: u64,
}

/// Everything [`compare`] decides about one current run vs a baseline
/// population.
#[derive(Debug, Clone)]
pub struct LedgerDiff {
    /// Baseline records compared against.
    pub baseline_len: usize,
    /// The baseline fingerprints differ from the current run's: the runs
    /// executed under a different design, program, or configuration, so
    /// results (and result-shaped counters) are not expected to be
    /// identical. A gate comparing a run against its own baseline treats
    /// this as failure — the run under test is not the blessed one.
    pub fingerprint_mismatch: bool,
    /// Set when the verdict digest or exercisable-gate count drifted —
    /// always a hard failure.
    pub verdict_drift: Option<VerdictDrift>,
    /// Counters whose current value differs from the baseline median.
    pub counter_deltas: Vec<CounterDelta>,
    /// Noise-banded wall/throughput/phase checks.
    pub perf: Vec<PerfCheck>,
}

impl LedgerDiff {
    /// True when the diff should fail a gate: verdict drift, a
    /// fingerprint mismatch (the current run is not the configuration the
    /// baseline blessed), or any perf regression beyond its noise band.
    pub fn failed(&self) -> bool {
        self.verdict_drift.is_some()
            || self.fingerprint_mismatch
            || self.perf.iter().any(|p| p.regressed)
    }

    /// The regressed perf checks, worst-relative-excursion first.
    pub fn regressions(&self) -> Vec<&PerfCheck> {
        let mut r: Vec<&PerfCheck> = self.perf.iter().filter(|p| p.regressed).collect();
        r.sort_by(|a, b| {
            let excess = |p: &PerfCheck| {
                let c = p.band.center.abs().max(1e-12);
                (p.current - p.band.center).abs() / c
            };
            excess(b)
                .partial_cmp(&excess(a))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        r
    }
}

fn perf_check(
    metric: &str,
    baseline: &[f64],
    current: f64,
    higher_is_better: bool,
    k: f64,
    rel_floor: f64,
    abs_floor: f64,
) -> PerfCheck {
    let band = stats::noise_band(baseline, k, rel_floor, abs_floor);
    let (regressed, improved) = if higher_is_better {
        (band.below(current), band.above(current))
    } else {
        (band.above(current), band.below(current))
    };
    PerfCheck {
        metric: metric.to_string(),
        band,
        current,
        higher_is_better,
        regressed,
        improved,
    }
}

/// Compares `current` against a baseline population (one or more records,
/// typically of the same fingerprint). See [`LedgerDiff`] for what comes
/// out; `baseline` must be non-empty.
pub fn compare(current: &LedgerEntry, baseline: &[&LedgerEntry], opts: &DiffOpts) -> LedgerDiff {
    assert!(
        !baseline.is_empty(),
        "compare needs at least one baseline record"
    );
    let fingerprint_mismatch = baseline
        .iter()
        .any(|b| b.fingerprint != current.fingerprint);

    // verdict: digest and gate counts must match the (unanimous) baseline
    let base_digest = &baseline[0].verdict_digest;
    let base_gates = baseline[0].exercisable_gates;
    let verdict_drift = (current.verdict_digest != *base_digest
        || current.exercisable_gates != base_gates
        || baseline
            .iter()
            .any(|b| b.verdict_digest != *base_digest || b.exercisable_gates != base_gates))
    .then(|| VerdictDrift {
        baseline_digest: base_digest.clone(),
        current_digest: current.verdict_digest.clone(),
        baseline_gates: base_gates,
        current_gates: current.exercisable_gates,
    });

    // counter deltas: every flat metric vs the baseline median
    let current_metrics = current.metric_values();
    let mut counter_deltas = Vec::new();
    for (name, cur) in &current_metrics {
        let base_vals: Vec<f64> = baseline
            .iter()
            .filter_map(|b| {
                b.metrics
                    .get(name)
                    .and_then(JsonValue::as_i64)
                    .map(|v| v as f64)
            })
            .collect();
        if base_vals.is_empty() {
            continue;
        }
        let base = stats::median(&base_vals).round() as i64;
        if base != *cur {
            counter_deltas.push(CounterDelta {
                name: name.clone(),
                baseline: base,
                current: *cur,
            });
        }
    }

    // noise-banded perf checks
    let mut perf = Vec::new();
    let walls: Vec<f64> = baseline.iter().map(|b| b.wall_seconds).collect();
    perf.push(perf_check(
        "wall_seconds",
        &walls,
        current.wall_seconds,
        false,
        opts.mad_k,
        opts.rel_floor,
        opts.wall_abs_floor_s,
    ));
    let cps: Vec<f64> = baseline.iter().map(|b| b.cycles_per_sec).collect();
    perf.push(perf_check(
        "cycles_per_sec",
        &cps,
        current.cycles_per_sec,
        true,
        opts.mad_k,
        opts.rel_floor,
        0.0,
    ));
    for (phase, cur_us) in current.phase_estimates_us() {
        let base_us: Vec<f64> = baseline
            .iter()
            .filter_map(|b| {
                b.phase_estimates_us()
                    .into_iter()
                    .find(|(n, _)| *n == phase)
                    .map(|(_, v)| v)
            })
            .collect();
        if base_us.is_empty() {
            continue;
        }
        perf.push(perf_check(
            &phase,
            &base_us,
            cur_us,
            false,
            opts.mad_k,
            opts.phase_rel_floor,
            opts.phase_abs_floor_us,
        ));
    }

    LedgerDiff {
        baseline_len: baseline.len(),
        fingerprint_mismatch,
        verdict_drift,
        counter_deltas,
        perf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> LedgerRecord {
        LedgerRecord {
            kind: "bench".into(),
            label: "omsp16/div".into(),
            design: "omsp16".into(),
            fingerprint: format!("{:016x}", 0xabcdu64),
            design_hash: format!("{:016x}", 1u64),
            program_hash: format!("{:016x}", 2u64),
            config: "mode=hybrid,workers=1".into(),
            eval_mode: "hybrid".into(),
            verdict_digest: format!("{:016x}", 0xfeedu64),
            total_gates: 100,
            exercisable_gates: 80,
            paths_created: 10,
            paths_skipped: 3,
            paths_finished: 7,
            paths_dropped: 0,
            simulated_cycles: 5000,
            wall_seconds: 0.5,
            cycles_per_sec: 10_000.0,
            env: EnvFingerprint {
                git_commit: "deadbeef".into(),
                rustc: "rustc 1.0".into(),
                host: "x86_64-linux".into(),
                workers: 1,
            },
            metrics_json: r#"{"paths_created":10,"cycles":5000,"histograms":{"phase_settle_us":{"bounds":[1,2,4],"counts":[0,2,0,1],"samples":3}}}"#.into(),
        }
    }

    #[test]
    fn record_round_trips_through_json() {
        let rec = record();
        let entry = LedgerEntry::from_json(&rec.to_json()).unwrap();
        assert_eq!(entry.kind, "bench");
        assert_eq!(entry.label, "omsp16/div");
        assert_eq!(entry.fingerprint, rec.fingerprint);
        assert_eq!(entry.verdict_digest, rec.verdict_digest);
        assert_eq!(entry.exercisable_gates, 80);
        assert_eq!(entry.wall_seconds, 0.5);
        assert_eq!(entry.env, rec.env);
        assert_eq!(
            entry.metrics.get("paths_created").unwrap().as_u64(),
            Some(10)
        );
        // phase estimate: 2 samples in (1,2] at midpoint 1.5 + 1 overflow at 8
        let phases = entry.phase_estimates_us();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].0, "phase_settle_us");
        assert!((phases[0].1 - (2.0 * 1.5 + 8.0)).abs() < 1e-9);
    }

    #[test]
    fn append_and_read_back() {
        let dir = std::env::temp_dir().join(format!("symsim-ledger-test-{}", std::process::id()));
        let path = dir.join("sub/ledger.ndjson");
        let _ = fs::remove_dir_all(&dir);
        append(&path, &record()).unwrap();
        append(&path, &record()).unwrap();
        let entries = read(&path).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].label, "omsp16/div");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn self_diff_is_clean() {
        let entry = LedgerEntry::from_json(&record().to_json()).unwrap();
        let diff = compare(&entry, &[&entry], &DiffOpts::default());
        assert!(!diff.failed());
        assert!(diff.verdict_drift.is_none());
        assert!(!diff.fingerprint_mismatch);
        assert!(diff.counter_deltas.is_empty());
        assert!(diff.perf.iter().all(|p| !p.regressed && !p.improved));
    }

    #[test]
    fn slowdown_beyond_band_is_flagged() {
        let base = LedgerEntry::from_json(&record().to_json()).unwrap();
        let mut slow = base.clone();
        slow.wall_seconds *= 3.0;
        slow.cycles_per_sec /= 3.0;
        let diff = compare(&slow, &[&base], &DiffOpts::default());
        assert!(diff.failed());
        assert!(diff.verdict_drift.is_none());
        let regressed: Vec<&str> = diff
            .regressions()
            .iter()
            .map(|p| p.metric.as_str())
            .collect();
        assert!(regressed.contains(&"wall_seconds"), "{regressed:?}");
        assert!(regressed.contains(&"cycles_per_sec"), "{regressed:?}");
    }

    #[test]
    fn verdict_drift_is_a_hard_failure() {
        let base = LedgerEntry::from_json(&record().to_json()).unwrap();
        let mut drifted = base.clone();
        drifted.verdict_digest = format!("{:016x}", 0x0badu64);
        let diff = compare(&drifted, &[&base], &DiffOpts::default());
        assert!(diff.failed());
        let drift = diff.verdict_drift.expect("digest change must be drift");
        assert_eq!(drift.baseline_digest, base.verdict_digest);
        // gate-count drift alone is also drift
        let mut fewer = base.clone();
        fewer.exercisable_gates -= 1;
        assert!(compare(&fewer, &[&base], &DiffOpts::default())
            .verdict_drift
            .is_some());
    }

    #[test]
    fn counter_deltas_report_against_the_median() {
        let base = LedgerEntry::from_json(&record().to_json()).unwrap();
        let mut cur = base.clone();
        cur.metrics =
            JsonValue::parse(r#"{"paths_created":12,"cycles":5000,"histograms":{}}"#).unwrap();
        let diff = compare(&cur, &[&base], &DiffOpts::default());
        assert_eq!(diff.counter_deltas.len(), 1);
        assert_eq!(diff.counter_deltas[0].name, "paths_created");
        assert_eq!(diff.counter_deltas[0].baseline, 10);
        assert_eq!(diff.counter_deltas[0].current, 12);
    }

    #[test]
    fn resolve_path_honors_disable_spellings() {
        assert!(resolve_path(Some("off")).is_none());
        assert!(resolve_path(Some("none")).is_none());
        assert!(resolve_path(Some("0")).is_none());
        assert!(resolve_path(Some("")).is_none());
        assert_eq!(
            resolve_path(Some("x.ndjson")),
            Some(PathBuf::from("x.ndjson"))
        );
    }
}
