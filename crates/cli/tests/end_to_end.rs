//! End-to-end CLI test: the full paper workflow through the `symsim`
//! binary — netlist in Verilog, program image, monitor list → analysis →
//! activity profile → bespoke netlist → concrete simulation.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use symsim_cpu::omsp16;

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("symsim-cli-test-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn symsim(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_symsim"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn full_workflow_through_the_cli() {
    let dir = workdir();
    let design = dir.join("omsp16.v");
    let program = dir.join("div.hex");
    let monitor = dir.join("control_signals.ini");
    let profile = dir.join("profile.txt");
    let bespoke = dir.join("bespoke.v");

    // materialize the design and application as the tool's input files
    let cpu = omsp16::build();
    fs::write(&design, symsim_verilog::write_netlist(&cpu.netlist)).expect("write design");
    let words = omsp16::assemble(omsp16::benchmark("div").source).expect("assembles");
    let hex: String = words.iter().map(|w| format!("{w:08x}\n")).collect();
    fs::write(&program, hex).expect("write program");
    fs::write(
        &monitor,
        "# openMSP430-style monitor list (paper Listing 1)\n\
         qualifier is_branch\n\
         signal flags[0]\nsignal flags[1]\nsignal flags[2]\nsignal flags[3]\n\
         split branch_cond\n",
    )
    .expect("write monitor list");

    // stats
    let (ok, stdout, stderr) = symsim(&["stats", design.to_str().unwrap()]);
    assert!(ok, "stats failed: {stderr}");
    assert!(stdout.contains("omsp16"), "{stdout}");

    // analyze with symbolic inputs at dmem words 0 and 1
    let (ok, stdout, stderr) = symsim(&[
        "analyze",
        design.to_str().unwrap(),
        "--program",
        program.to_str().unwrap(),
        "--monitor",
        monitor.to_str().unwrap(),
        "--pc",
        "pc",
        "--finish",
        "finish",
        "--inputs",
        "0,1",
        "--power",
        "yes",
        "--profile-out",
        profile.to_str().unwrap(),
    ]);
    assert!(ok, "analyze failed: {stderr}");
    assert!(stdout.contains("exercisable"), "{stdout}");
    assert!(stdout.contains("power:"), "{stdout}");
    assert!(profile.exists());

    // bespoke generation from the dumped profile
    let (ok, stdout, stderr) = symsim(&[
        "bespoke",
        design.to_str().unwrap(),
        "--profile",
        profile.to_str().unwrap(),
        "--out",
        bespoke.to_str().unwrap(),
    ]);
    assert!(ok, "bespoke failed: {stderr}");
    assert!(stdout.contains("reduction"), "{stdout}");
    let bespoke_text = fs::read_to_string(&bespoke).expect("bespoke written");
    assert!(bespoke_text.contains("module omsp16_bespoke"));

    // lint and dot on the original design
    let (ok, stdout, stderr) = symsim(&["lint", design.to_str().unwrap()]);
    assert!(ok, "lint failed: {stderr}");
    assert!(
        stdout.contains("clean") || stdout.contains("finding"),
        "{stdout}"
    );
    let dot_path = dir.join("design.dot");
    let (ok, _, stderr) = symsim(&[
        "dot",
        design.to_str().unwrap(),
        "--out",
        dot_path.to_str().unwrap(),
        "--profile",
        profile.to_str().unwrap(),
        "--max-gates",
        "100",
    ]);
    assert!(ok, "dot failed: {stderr}");
    let dot_text = fs::read_to_string(&dot_path).expect("dot written");
    assert!(dot_text.contains("digraph"));
    assert!(
        dot_text.contains("lightgreen"),
        "exercisable gates highlighted"
    );

    // waveform-enabled simulation
    let vcd_path = dir.join("run.vcd");
    let (ok, _, stderr) = symsim(&[
        "simulate",
        design.to_str().unwrap(),
        "--program",
        program.to_str().unwrap(),
        "--finish",
        "finish",
        "--data",
        "0=100,1=7",
        "--watch",
        "pc",
        "--vcd",
        vcd_path.to_str().unwrap(),
    ]);
    assert!(ok, "vcd simulate failed: {stderr}");
    let vcd_text = fs::read_to_string(&vcd_path).expect("vcd written");
    assert!(vcd_text.contains("$enddefinitions"));

    // concrete simulation of the bespoke netlist: div 100/7
    let (ok, stdout, stderr) = symsim(&[
        "simulate",
        bespoke.to_str().unwrap(),
        "--program",
        program.to_str().unwrap(),
        "--finish",
        "finish",
        "--data",
        "0=100,1=7",
        "--watch",
        "rf3",
    ]);
    assert!(ok, "simulate failed: {stderr}");
    assert!(stdout.contains("finished"), "{stdout}");
    // rf3 holds the quotient: 14 = 16'b...01110
    assert!(
        stdout.contains("rf3 = 16'b0000000000001110"),
        "quotient mismatch: {stdout}"
    );

    // attributed analysis: provenance summary, coverage-bearing run trace
    let trace_path = dir.join("run.trace");
    let (ok, stdout, stderr) = symsim(&[
        "analyze",
        design.to_str().unwrap(),
        "--program",
        program.to_str().unwrap(),
        "--monitor",
        monitor.to_str().unwrap(),
        "--pc",
        "pc",
        "--finish",
        "finish",
        "--inputs",
        "0,1",
        "--attribution",
        "yes",
        "--trace-out",
        trace_path.to_str().unwrap(),
    ]);
    assert!(ok, "attributed analyze failed: {stderr}");
    assert!(stdout.contains("provenance:"), "{stdout}");
    let trace_text = fs::read_to_string(&trace_path).expect("trace written");
    assert!(trace_text.contains("\"ev\":\"coverage\""), "{trace_text}");
    assert!(trace_text.contains("\"ev\":\"cover_first\""));

    // coverage timeline from the recorded trace
    let (ok, stdout, stderr) = symsim(&["trace", "coverage", trace_path.to_str().unwrap()]);
    assert!(ok, "trace coverage failed: {stderr}");
    assert!(stdout.starts_with("paths\tcycles\tcovered"), "{stdout}");

    // explain the hardest-won net and dump its witness
    let witness_path = dir.join("witness.json");
    let (ok, stdout, stderr) = symsim(&[
        "explain",
        design.to_str().unwrap(),
        "--program",
        program.to_str().unwrap(),
        "--monitor",
        monitor.to_str().unwrap(),
        "--pc",
        "pc",
        "--finish",
        "finish",
        "--inputs",
        "0,1",
        "--witness-out",
        witness_path.to_str().unwrap(),
    ]);
    assert!(ok, "explain failed: {stderr}");
    assert!(stdout.contains("first exercised at cycle"), "{stdout}");
    assert!(stdout.contains("lineage"), "{stdout}");
    assert!(stdout.contains("prescription:"), "{stdout}");
    let witness_text = fs::read_to_string(&witness_path).expect("witness written");
    assert!(witness_text.contains("symsim-witness-v1"));

    // and the witness replays deterministically
    let (ok, stdout, stderr) = symsim(&[
        "replay",
        design.to_str().unwrap(),
        "--witness",
        witness_path.to_str().unwrap(),
    ]);
    assert!(ok, "replay failed: {stderr}\n{stdout}");
    assert!(stdout.contains("as witnessed"), "{stdout}");

    // fault grading with the application as the test stimulus
    let (ok, stdout, stderr) = symsim(&[
        "fault",
        design.to_str().unwrap(),
        "--program",
        program.to_str().unwrap(),
        "--data",
        "0=100,1=7",
        "--cycles",
        "150",
        "--max-faults",
        "60",
    ]);
    assert!(ok, "fault failed: {stderr}");
    assert!(stdout.contains("fault coverage:"), "{stdout}");

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn convert_between_formats() {
    let dir = workdir().join("convert");
    fs::create_dir_all(&dir).unwrap();
    let blif = dir.join("toggle.blif");
    fs::write(
        &blif,
        ".model toggle\n.inputs en\n.outputs q\n.names en q d\n10 1\n01 1\n.latch d q 0\n.end\n",
    )
    .expect("write blif");
    let verilog = dir.join("toggle.v");
    let (ok, _, stderr) = symsim(&[
        "convert",
        blif.to_str().unwrap(),
        "--out",
        verilog.to_str().unwrap(),
    ]);
    assert!(ok, "convert failed: {stderr}");
    let text = fs::read_to_string(&verilog).unwrap();
    assert!(text.contains("module toggle"));
    assert!(text.contains("dff #(.INIT(1'b0))"));
    // and back again
    let blif2 = dir.join("toggle2.blif");
    let (ok, _, stderr) = symsim(&[
        "convert",
        verilog.to_str().unwrap(),
        "--out",
        blif2.to_str().unwrap(),
    ]);
    assert!(ok, "convert back failed: {stderr}");
    assert!(fs::read_to_string(&blif2).unwrap().contains(".latch"));
    // stats works directly on BLIF inputs
    let (ok, stdout, _) = symsim(&["stats", blif.to_str().unwrap()]);
    assert!(ok && stdout.contains("toggle"));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn helpful_errors() {
    let (ok, _, stderr) = symsim(&["analyze", "/nonexistent.v", "--program", "x"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");
    let (ok, _, stderr) = symsim(&["bogus"]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");
}
