//! `symsim runs` — the query side of the persistent run ledger: list and
//! show recorded runs, diff a run against a baseline with noise-aware
//! regression gating, and scan a whole ledger for drifts.

use std::path::PathBuf;

use symsim_obs::ledger::{self, DiffOpts, LedgerDiff, LedgerEntry};

use crate::args::Args;

const RUNS_USAGE: &str = "\
usage: symsim runs list|show|diff|regressions [--ledger FILE]
  runs list                  one line per recorded run
  runs show [N|last]         full record N (1-based; default last)
  runs diff [BASE] [CUR]     compare run CUR (default last) against run
                             BASE, or — without BASE — against the median
                             of all earlier runs with the same fingerprint;
                             exits nonzero on verdict drift, a fingerprint
                             mismatch, or a perf regression beyond the
                             noise band
       [--against FILE]      take the baseline population from FILE
                             (same-fingerprint records) instead
       [--mad-k K]           noise-band width in robust sigmas (default 3)
       [--rel PCT]           relative band floor in percent (default 25)
  runs regressions           diff every run against its same-fingerprint
                             predecessors; exits nonzero on verdict drift";

/// Entry point for `symsim runs`.
pub fn runs_cmd(args: &Args) -> Result<(), String> {
    let action = args
        .positional
        .first()
        .map(String::as_str)
        .ok_or_else(|| RUNS_USAGE.to_string())?;
    let path = ledger_path(args)?;
    let entries = ledger::read(&path)?;
    if entries.is_empty() {
        return Err(format!("{}: ledger is empty", path.display()));
    }
    match action {
        "list" => list(&entries),
        "show" => show(args, &entries),
        "diff" => diff(args, &entries),
        "regressions" => regressions(args, &entries),
        other => Err(format!("unknown runs action \"{other}\"\n{RUNS_USAGE}")),
    }
}

/// The ledger file queries read: `--ledger` wins, then `$SYMSIM_LEDGER`,
/// then the default. `off` is an error here — there is nothing to query.
fn ledger_path(args: &Args) -> Result<PathBuf, String> {
    let path = ledger::resolve_path(args.get("ledger"))
        .ok_or("runs: the ledger is disabled (--ledger off); nothing to query")?;
    if !path.exists() {
        return Err(format!(
            "no ledger at {} — run `symsim analyze` (or set $SYMSIM_LEDGER) first",
            path.display()
        ));
    }
    Ok(path)
}

/// Resolves a 1-based run index, `last`, or `prev`.
fn parse_index(spec: &str, len: usize) -> Result<usize, String> {
    match spec {
        "last" => Ok(len - 1),
        "prev" if len >= 2 => Ok(len - 2),
        "prev" => Err("runs: \"prev\" needs at least two recorded runs".into()),
        n => {
            let i: usize = n
                .parse()
                .map_err(|_| format!("runs: bad run index \"{n}\" (1-based, or last/prev)"))?;
            if i == 0 || i > len {
                return Err(format!(
                    "runs: index {i} out of range (ledger has {len} runs)"
                ));
            }
            Ok(i - 1)
        }
    }
}

/// `ts_ms` as `YYYY-MM-DD HH:MM:SS` UTC (civil-from-days, Hinnant's
/// algorithm) — the ledger is NDJSON, but humans read `runs list`.
fn format_ts(ts_ms: u64) -> String {
    let secs = (ts_ms / 1000) as i64;
    let days = secs.div_euclid(86_400);
    let rem = secs.rem_euclid(86_400);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!(
        "{y:04}-{m:02}-{d:02} {:02}:{:02}:{:02}",
        rem / 3600,
        (rem / 60) % 60,
        rem % 60
    )
}

fn list(entries: &[LedgerEntry]) -> Result<(), String> {
    println!(
        "{:>4}  {:19}  {:7}  {:24}  {:8}  {:>9}  {:>9}  {:>11}  {:16}",
        "#", "when (UTC)", "kind", "label", "mode", "gates", "wall s", "cyc/s", "fingerprint"
    );
    for (i, e) in entries.iter().enumerate() {
        println!(
            "{:>4}  {:19}  {:7}  {:24}  {:8}  {:>9}  {:>9.3}  {:>11.0}  {:16}",
            i + 1,
            format_ts(e.ts_ms),
            e.kind,
            e.label,
            e.eval_mode,
            format!("{}/{}", e.exercisable_gates, e.total_gates),
            e.wall_seconds,
            e.cycles_per_sec,
            e.fingerprint,
        );
    }
    Ok(())
}

fn show(args: &Args, entries: &[LedgerEntry]) -> Result<(), String> {
    let idx = match args.positional.get(1) {
        Some(spec) => parse_index(spec, entries.len())?,
        None => entries.len() - 1,
    };
    let e = &entries[idx];
    println!(
        "run #{} of {} ({})",
        idx + 1,
        entries.len(),
        format_ts(e.ts_ms)
    );
    println!("  kind:           {}", e.kind);
    println!("  label:          {}", e.label);
    println!("  design:         {}", e.design);
    println!("  fingerprint:    {}", e.fingerprint);
    println!("  config:         {}", e.config);
    println!("  eval mode:      {}", e.eval_mode);
    println!("  verdict digest: {}", e.verdict_digest);
    println!(
        "  verdict:        {} / {} gates exercisable",
        e.exercisable_gates, e.total_gates
    );
    println!(
        "  throughput:     {} cycles in {:.3}s ({:.0} cyc/s)",
        e.simulated_cycles, e.wall_seconds, e.cycles_per_sec
    );
    println!(
        "  env:            {} | {} | {} | {} worker(s)",
        e.env.git_commit, e.env.rustc, e.env.host, e.env.workers
    );
    let metrics = e.metric_values();
    if !metrics.is_empty() {
        println!("  metrics:");
        for (name, v) in metrics {
            println!("    {name:32} {v}");
        }
    }
    let phases = e.phase_estimates_us();
    if !phases.is_empty() {
        println!("  phase estimates (us, from histogram midpoints):");
        for (name, us) in phases {
            println!("    {name:32} {us:.0}");
        }
    }
    Ok(())
}

fn diff_opts(args: &Args) -> Result<DiffOpts, String> {
    let mut opts = DiffOpts {
        mad_k: args.get_f64("mad-k", 3.0)?,
        ..DiffOpts::default()
    };
    let rel = args.get_f64("rel", opts.rel_floor * 100.0)? / 100.0;
    opts.rel_floor = rel;
    opts.phase_rel_floor = opts.phase_rel_floor.max(rel);
    Ok(opts)
}

/// Prints a diff and converts it to the command's exit status.
fn render_diff(current_name: &str, baseline_name: &str, diff: &LedgerDiff) -> Result<(), String> {
    println!(
        "diff: {current_name} vs {baseline_name} ({} baseline run{})",
        diff.baseline_len,
        if diff.baseline_len == 1 { "" } else { "s" }
    );
    if diff.fingerprint_mismatch {
        println!(
            "  FINGERPRINT MISMATCH: the runs executed under a different \
             design, program, or config — the current run is not the \
             configuration the baseline blessed"
        );
    }
    match &diff.verdict_drift {
        None => println!("  verdict: unchanged"),
        Some(d) => println!(
            "  VERDICT DRIFT: digest {} -> {} ({} -> {} exercisable gates)",
            d.baseline_digest, d.current_digest, d.baseline_gates, d.current_gates
        ),
    }
    for p in &diff.perf {
        let status = if p.regressed {
            "REGRESSED"
        } else if p.improved {
            "improved"
        } else {
            "ok"
        };
        println!(
            "  {:32} {:>12.3} vs {:>12.3} +/- {:<12.3} {}",
            p.metric, p.current, p.band.center, p.band.width, status
        );
    }
    if !diff.counter_deltas.is_empty() {
        println!("  counter deltas (current vs baseline median):");
        for d in &diff.counter_deltas {
            println!(
                "    {:32} {} -> {} ({:+})",
                d.name,
                d.baseline,
                d.current,
                d.current - d.baseline
            );
        }
    }
    if diff.failed() {
        let n = diff.regressions().len();
        Err(if diff.verdict_drift.is_some() {
            format!("runs diff: verdict drift ({n} perf regression(s))")
        } else if diff.fingerprint_mismatch {
            format!("runs diff: fingerprint mismatch ({n} perf regression(s))")
        } else {
            format!("runs diff: {n} perf regression(s) beyond the noise band")
        })
    } else {
        println!("  result: no regressions");
        Ok(())
    }
}

fn diff(args: &Args, entries: &[LedgerEntry]) -> Result<(), String> {
    let opts = diff_opts(args)?;
    if let Some(baseline_file) = args.get("against") {
        // current from this ledger, baseline population from the file
        let idx = match args.positional.get(1) {
            Some(spec) => parse_index(spec, entries.len())?,
            None => entries.len() - 1,
        };
        let current = &entries[idx];
        let baseline_entries = ledger::read(&PathBuf::from(baseline_file))?;
        let same: Vec<&LedgerEntry> = baseline_entries
            .iter()
            .filter(|b| b.fingerprint == current.fingerprint)
            .collect();
        let population: Vec<&LedgerEntry> = if same.is_empty() {
            println!(
                "note: {baseline_file} has no runs with fingerprint {} — \
                 falling back to label \"{}\"",
                current.fingerprint, current.label
            );
            baseline_entries
                .iter()
                .filter(|b| b.label == current.label)
                .collect()
        } else {
            same
        };
        if population.is_empty() {
            return Err(format!(
                "{baseline_file}: no baseline runs match fingerprint {} or label \"{}\"",
                current.fingerprint, current.label
            ));
        }
        let d = ledger::compare(current, &population, &opts);
        return render_diff(&format!("run #{}", idx + 1), baseline_file, &d);
    }
    match (args.positional.get(1), args.positional.get(2)) {
        (Some(base), Some(cur)) => {
            // explicit pair: BASE then CUR
            let b = parse_index(base, entries.len())?;
            let c = parse_index(cur, entries.len())?;
            let d = ledger::compare(&entries[c], &[&entries[b]], &opts);
            render_diff(&format!("run #{}", c + 1), &format!("run #{}", b + 1), &d)
        }
        (spec, None) => {
            // single run against the median of its same-fingerprint history
            let c = match spec {
                Some(s) => parse_index(s, entries.len())?,
                None => entries.len() - 1,
            };
            let current = &entries[c];
            let baseline: Vec<&LedgerEntry> = entries[..c]
                .iter()
                .filter(|b| b.fingerprint == current.fingerprint)
                .collect();
            if baseline.is_empty() {
                return Err(format!(
                    "run #{} has no earlier runs with fingerprint {} to compare against",
                    c + 1,
                    current.fingerprint
                ));
            }
            let d = ledger::compare(current, &baseline, &opts);
            render_diff(
                &format!("run #{}", c + 1),
                &format!("same-fingerprint history ({} runs)", baseline.len()),
                &d,
            )
        }
        (None, Some(_)) => unreachable!("positional 2 implies positional 1"),
    }
}

/// Scans the whole ledger: every run is diffed against its
/// same-fingerprint predecessors. Perf excursions are listed but only
/// verdict drift fails the scan — historical wall times from other
/// machines or debug builds are noise, a changed verdict never is.
fn regressions(args: &Args, entries: &[LedgerEntry]) -> Result<(), String> {
    let opts = diff_opts(args)?;
    let mut drifts = 0usize;
    let mut perf_flags = 0usize;
    let mut compared = 0usize;
    for (i, current) in entries.iter().enumerate().skip(1) {
        let baseline: Vec<&LedgerEntry> = entries[..i]
            .iter()
            .filter(|b| b.fingerprint == current.fingerprint)
            .collect();
        if baseline.is_empty() {
            continue;
        }
        compared += 1;
        let d = ledger::compare(current, &baseline, &opts);
        if let Some(drift) = &d.verdict_drift {
            drifts += 1;
            println!(
                "run #{} ({}): VERDICT DRIFT {} -> {} ({} -> {} gates)",
                i + 1,
                current.label,
                drift.baseline_digest,
                drift.current_digest,
                drift.baseline_gates,
                drift.current_gates
            );
        }
        for p in d.regressions() {
            perf_flags += 1;
            println!(
                "run #{} ({}): {} {:.3} outside {:.3} +/- {:.3}",
                i + 1,
                current.label,
                p.metric,
                p.current,
                p.band.center,
                p.band.width
            );
        }
    }
    println!(
        "scanned {} runs ({} with a comparable history): {} verdict drift(s), \
         {} perf excursion(s)",
        entries.len(),
        compared,
        drifts,
        perf_flags
    );
    if drifts > 0 {
        Err(format!("runs regressions: {drifts} verdict drift(s)"))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_parsing() {
        assert_eq!(parse_index("1", 3).unwrap(), 0);
        assert_eq!(parse_index("3", 3).unwrap(), 2);
        assert_eq!(parse_index("last", 3).unwrap(), 2);
        assert_eq!(parse_index("prev", 3).unwrap(), 1);
        assert!(parse_index("0", 3).is_err());
        assert!(parse_index("4", 3).is_err());
        assert!(parse_index("x", 3).is_err());
        assert!(parse_index("prev", 1).is_err());
    }

    #[test]
    fn timestamps_render_as_utc() {
        assert_eq!(format_ts(0), "1970-01-01 00:00:00");
        // 2022-03-14 15:09:26 UTC
        assert_eq!(format_ts(1_647_270_566_000), "2022-03-14 15:09:26");
    }
}
