//! `symsim` — the command-line face of the design-agnostic symbolic
//! co-analysis tool. Mirrors the paper's user workflow (§3.2): hand the
//! tool a gate-level netlist, an application image, and a list of
//! control-flow signals to monitor; get back the exercisable-gate
//! dichotomy and, optionally, a bespoke netlist.
//!
//! ```text
//! symsim stats    design.v
//! symsim analyze  design.v --program app.hex --pc pc --finish finish \
//!                 --monitor control_signals.ini [options]
//! symsim bespoke  design.v --profile profile.txt --out bespoke.v
//! symsim simulate design.v --program app.hex --finish finish --cycles 10000
//! ```

mod args;
mod commands;
mod files;
mod runs_cmd;
mod trace_cmd;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // routed through the trace layer so --log-format json keeps even
            // failures machine-parseable (one NDJSON line on stderr)
            symsim_obs::error!("symsim", "{e}");
            ExitCode::FAILURE
        }
    }
}
