//! File formats the CLI consumes: program images, monitor lists
//! (`control_signals.ini` of paper Listing 1), constraint files, and data
//! initializers.

use symsim_logic::Value;
use symsim_netlist::{NetId, Netlist};

/// Parses a program image: one hexadecimal word per line (a `0x` prefix is
/// optional); `#`/`;`/`//` comments and blank lines ignored. The format is
/// always hex — an all-digit word like `04000000` would otherwise be
/// ambiguous.
pub fn parse_program(text: &str) -> Result<Vec<u32>, String> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let mut line = raw;
        for marker in ["#", ";", "//"] {
            if let Some(p) = line.find(marker) {
                line = &line[..p];
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let digits = line.strip_prefix("0x").unwrap_or(line);
        let value = u32::from_str_radix(digits, 16)
            .map_err(|_| format!("program line {}: bad hex word \"{line}\"", i + 1))?;
        out.push(value);
    }
    if out.is_empty() {
        return Err("program image is empty".into());
    }
    Ok(out)
}

/// The parsed monitor list (the `control_signals.ini` of Listing 1).
#[derive(Debug, Clone, Default)]
pub struct MonitorFile {
    pub qualifier: Option<String>,
    pub signals: Vec<String>,
    pub split: Vec<String>,
}

/// Parses a monitor list: `signal <net>` lines, an optional
/// `qualifier <net>` line, and optional `split <net>` lines naming the
/// signals the CSM forces (defaults to the monitored signals).
pub fn parse_monitor_file(text: &str) -> Result<MonitorFile, String> {
    let mut out = MonitorFile::default();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (kw, rest) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| format!("monitor line {}: expected \"<kind> <net>\"", i + 1))?;
        let net = rest.trim().to_string();
        match kw {
            "signal" => out.signals.push(net),
            "split" => out.split.push(net),
            "qualifier" => {
                if out.qualifier.replace(net).is_some() {
                    return Err(format!("monitor line {}: duplicate qualifier", i + 1));
                }
            }
            other => return Err(format!("monitor line {}: unknown kind \"{other}\"", i + 1)),
        }
    }
    if out.signals.is_empty() {
        return Err("monitor list has no signals".into());
    }
    Ok(out)
}

/// Parses a constraint file: `net = 0|1` per line (paper §3.3's constraint
/// text file), resolving net names against the design.
pub fn parse_constraints(
    text: &str,
    netlist: &Netlist,
) -> Result<Vec<symsim_core::StateConstraint>, String> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once('=')
            .ok_or_else(|| format!("constraint line {}: expected \"net = value\"", i + 1))?;
        let net = resolve_net(netlist, name.trim())?;
        let value = match value.trim() {
            "0" => Value::ZERO,
            "1" => Value::ONE,
            other => return Err(format!("constraint line {}: bad value \"{other}\"", i + 1)),
        };
        if let Some(prev) = out
            .iter()
            .find(|c: &&symsim_core::StateConstraint| c.net == net && c.value != value)
        {
            return Err(format!(
                "constraint line {}: \"{}\" already constrained to {} (cannot also be {})",
                i + 1,
                name.trim(),
                prev.value,
                value
            ));
        }
        out.push(symsim_core::StateConstraint { net, value });
    }
    // the full validity check (range, known values) runs again inside
    // CoAnalysis::new; doing it here gives the error a file/line context
    symsim_core::validate_constraints(&out, netlist.net_count())?;
    Ok(out)
}

/// Parses `addr=value` comma-separated data initializers.
pub fn parse_data_init(spec: &str) -> Result<Vec<(usize, u64)>, String> {
    spec.split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|pair| {
            let (a, v) = pair
                .split_once('=')
                .ok_or_else(|| format!("bad data initializer \"{pair}\""))?;
            let addr = a
                .trim()
                .parse()
                .map_err(|_| format!("bad address \"{a}\""))?;
            let v = v.trim();
            let value = if let Some(hex) = v.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                v.parse()
            }
            .map_err(|_| format!("bad value \"{v}\""))?;
            Ok((addr, value))
        })
        .collect()
}

/// Parses a comma-separated address list.
pub fn parse_addr_list(spec: &str) -> Result<Vec<usize>, String> {
    spec.split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|a| a.trim().parse().map_err(|_| format!("bad address \"{a}\"")))
        .collect()
}

/// Resolves a single net by name.
pub fn resolve_net(netlist: &Netlist, name: &str) -> Result<NetId, String> {
    netlist
        .find_net(name)
        .ok_or_else(|| format!("no net named \"{name}\" in {}", netlist.name))
}

/// Resolves a bus: either a scalar net `name` or `name[0]..name[n-1]`
/// (width auto-detected).
pub fn resolve_bus(netlist: &Netlist, name: &str) -> Result<Vec<NetId>, String> {
    if let Some(n) = netlist.find_net(name) {
        return Ok(vec![n]);
    }
    let mut out = Vec::new();
    for i in 0.. {
        match netlist.find_net(&format!("{name}[{i}]")) {
            Some(n) => out.push(n),
            None => break,
        }
    }
    if out.is_empty() {
        return Err(format!(
            "no net or bus named \"{name}\" in {}",
            netlist.name
        ));
    }
    Ok(out)
}

/// Finds a memory index by name.
pub fn resolve_memory(netlist: &Netlist, name: &str) -> Result<usize, String> {
    netlist
        .memories()
        .iter()
        .position(|m| m.name == name)
        .ok_or_else(|| format!("no memory named \"{name}\" in {}", netlist.name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_formats() {
        let p = parse_program("0x10  # comment\n20\ndeadbeef\n\n; note\n").unwrap();
        assert_eq!(p, vec![0x10, 0x20, 0xdeadbeef]);
        assert!(parse_program("zzz").is_err());
        assert!(parse_program("# only comments\n").is_err());
    }

    #[test]
    fn monitor_file() {
        let m = parse_monitor_file(
            "qualifier is_branch\nsignal flags[0] # Z\nsignal flags[1]\nsplit branch_cond\n",
        )
        .unwrap();
        assert_eq!(m.qualifier.as_deref(), Some("is_branch"));
        assert_eq!(m.signals.len(), 2);
        assert_eq!(m.split, vec!["branch_cond"]);
        assert!(parse_monitor_file("qualifier a\n").is_err());
        assert!(parse_monitor_file("bogus x\nsignal s\n").is_err());
    }

    #[test]
    fn constraint_files_reject_conflicts() {
        let nl = {
            let mut b = symsim_netlist::RtlBuilder::new("t");
            let a = b.input("a", 1);
            b.output("y", &a);
            b.finish().unwrap()
        };
        assert_eq!(parse_constraints("a = 1\n", &nl).unwrap().len(), 1);
        // duplicates that agree are harmless
        assert_eq!(parse_constraints("a = 1\na = 1\n", &nl).unwrap().len(), 2);
        // regression: a net pinned to both values used to slip through and
        // silently let the last line win
        let err = parse_constraints("a = 0\na = 1\n", &nl).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(parse_constraints("a = 2\n", &nl).is_err());
        assert!(parse_constraints("nope = 1\n", &nl).is_err());
    }

    #[test]
    fn data_and_addresses() {
        assert_eq!(
            parse_data_init("0=5, 3=0x10").unwrap(),
            vec![(0, 5), (3, 16)]
        );
        assert_eq!(parse_addr_list("1,2, 9").unwrap(), vec![1, 2, 9]);
        assert!(parse_data_init("1:2").is_err());
    }
}
