//! `symsim trace` — offline analysis of run traces recorded with
//! `--trace-out`.
//!
//! Five actions over a parsed [`Trace`]:
//!
//! * `summarize`    — run overview: outcomes, cycles, phase-time table,
//!   per-worker utilization, and the sink's own event/drop accounting.
//! * `lineage`      — the path-lineage tree reconstructed from the fork
//!   records, one line per path with its outcome and cycle count.
//! * `hotspots`     — fork sites ranked by children spawned, plus the
//!   phase-time table (where did the wall-clock go).
//! * `coverage`     — the coverage timeline of an attributed run
//!   (`--attribution yes`) as TSV: one row per growth step of the
//!   covered-net count, with the paths/cycles invested to reach it.
//! * `export-chrome` — the Chrome Trace Event (Perfetto-loadable) JSON
//!   rendering of the trace (coverage becomes a counter track).

use std::collections::HashMap;
use std::fs;

use symsim_obs::{export_chrome, info, Trace, TraceRecord};

use crate::args::Args;

pub fn trace_cmd(args: &Args) -> Result<(), String> {
    let action = args.positional.first().ok_or(
        "trace: expected an action: summarize, lineage, hotspots, coverage, or export-chrome",
    )?;
    let path = args
        .positional
        .get(1)
        .ok_or("trace: expected a trace file (recorded with --trace-out)")?;
    let trace = Trace::read_file(path)?;
    match action.as_str() {
        "summarize" => summarize(&trace),
        "lineage" => lineage(&trace, args.get_usize("max-lines", 200)?),
        "hotspots" => hotspots(&trace, args.get_usize("top", 10)?),
        "coverage" => coverage(&trace),
        "export-chrome" => {
            let doc = export_chrome(&trace);
            match args.get("out") {
                Some(out) => {
                    fs::write(out, doc).map_err(|e| format!("cannot write {out}: {e}"))?;
                    info!("trace", "wrote Chrome trace to {out}");
                }
                None => println!("{doc}"),
            }
            Ok(())
        }
        other => Err(format!(
            "trace: unknown action \"{other}\" (expected summarize, lineage, hotspots, \
             coverage, or export-chrome)"
        )),
    }
}

fn summarize(trace: &Trace) -> Result<(), String> {
    match trace.meta() {
        Some((design, workers)) => println!(
            "trace: {design}, {workers} worker(s), {} record(s), wall {:.3} ms",
            trace.records.len(),
            trace.wall_us() as f64 / 1_000.0
        ),
        None => println!(
            "trace: (no meta record), {} record(s), wall {:.3} ms",
            trace.records.len(),
            trace.wall_us() as f64 / 1_000.0
        ),
    }
    let oc = trace.outcome_counts();
    println!(
        "paths:  {} simulated — {} finished, {} covered, {} split, {} budget-exhausted",
        oc.total(),
        oc.finished,
        oc.covered,
        oc.split,
        oc.budget
    );
    println!(
        "        {} created over {} fork(s)",
        trace.paths_created(),
        trace
            .records
            .iter()
            .filter(|r| matches!(r, TraceRecord::Fork { .. }))
            .count()
    );
    println!("cycles: {} simulated", trace.total_cycles());
    print_phase_table(trace);
    let workers = trace.worker_stats();
    if !workers.is_empty() {
        println!();
        println!("worker  segments      cycles     busy_us     wait_us");
        for w in &workers {
            let label = if w.worker < 0 {
                "main".to_owned()
            } else {
                w.worker.to_string()
            };
            println!(
                "{label:>6}  {:>8}  {:>10}  {:>10}  {:>10}",
                w.segments, w.cycles, w.busy_us, w.wait_us
            );
        }
    }
    if let Some(stats) = trace.summary() {
        println!();
        println!(
            "sink:   {} event(s), {} dropped, {} byte(s)",
            stats.events, stats.dropped, stats.bytes
        );
    }
    Ok(())
}

fn print_phase_table(trace: &Trace) {
    let table = trace.phase_table();
    let total: u64 = trace
        .records
        .iter()
        .map(|r| match r {
            TraceRecord::PathEnd { phases, .. } => phases.seg_us + phases.wait_us,
            _ => 0,
        })
        .sum();
    if table.is_empty() {
        return;
    }
    println!();
    println!("phase             total_us       %");
    for (name, us) in &table {
        let pct = if total > 0 {
            *us as f64 * 100.0 / total as f64
        } else {
            0.0
        };
        println!("{name:<16}  {us:>8}  {pct:>5.1}");
    }
    println!("{:<16}  {total:>8}  100.0", "segment total");
}

fn lineage(trace: &Trace, max_lines: usize) -> Result<(), String> {
    let lin = trace.lineage();
    // outcome/cycles per ended path, and the roots (paths nobody forked)
    let mut ends: HashMap<u64, (&str, u64)> = HashMap::new();
    let mut roots: Vec<u64> = Vec::new();
    for r in &trace.records {
        if let TraceRecord::PathEnd {
            path,
            outcome,
            cycles,
            ..
        } = r
        {
            ends.insert(*path, (outcome.name(), *cycles));
            if !lin.parent.contains_key(path) {
                roots.push(*path);
            }
        }
    }
    roots.sort_unstable();
    let sizes = lin.subtree_sizes();
    let mut printed = 0usize;
    // explicit stack of (path, depth); children pushed in reverse keeps
    // the printed order depth-first and ascending
    let mut stack: Vec<(u64, usize)> = roots.iter().rev().map(|&p| (p, 0)).collect();
    while let Some((path, depth)) = stack.pop() {
        if printed >= max_lines {
            println!("... (truncated at {max_lines} lines; raise --max-lines)");
            break;
        }
        let (outcome, cycles) = ends.get(&path).copied().unwrap_or(("?", 0));
        let fork = lin
            .fork_pc
            .get(&path)
            .map(|pc| format!(" fork@{pc}"))
            .unwrap_or_default();
        let subtree = sizes.get(&path).copied().unwrap_or(1);
        println!(
            "{:indent$}path {path}: {outcome}, {cycles} cycle(s), subtree {subtree}{fork}",
            "",
            indent = depth * 2
        );
        printed += 1;
        if let Some(children) = lin.children.get(&path) {
            for &c in children.iter().rev() {
                stack.push((c, depth + 1));
            }
        }
    }
    Ok(())
}

/// The coverage timeline as TSV (`paths  cycles  covered  total  pct`),
/// one row per growth step, followed by the per-net first-exercise dump
/// when the trace carries `cover_first` records.
fn coverage(trace: &Trace) -> Result<(), String> {
    let curve = trace.coverage_curve();
    if curve.is_empty() {
        return Err(
            "trace has no coverage records — record it from an --attribution yes run".into(),
        );
    }
    println!("paths\tcycles\tcovered\ttotal\tpct");
    for p in &curve {
        let pct = if p.total > 0 {
            p.covered as f64 * 100.0 / p.total as f64
        } else {
            0.0
        };
        println!(
            "{}\t{}\t{}\t{}\t{pct:.2}",
            p.paths, p.cycles, p.covered, p.total
        );
    }
    let firsts = trace.cover_firsts();
    if !firsts.is_empty() {
        println!();
        println!("net\tpath\tcycle\tpc");
        for f in &firsts {
            println!("{}\t{}\t{}\t{}", f.net, f.path, f.cycle, f.pc);
        }
    }
    Ok(())
}

fn hotspots(trace: &Trace, top: usize) -> Result<(), String> {
    let sites = trace.fork_hotspots();
    if sites.is_empty() {
        println!("no forks recorded");
    } else {
        println!("fork pc               forks  children");
        for site in sites.iter().take(top) {
            println!("{:<20}  {:>5}  {:>8}", site.pc, site.forks, site.children);
        }
        if sites.len() > top {
            println!("... ({} more fork site(s); raise --top)", sites.len() - top);
        }
    }
    print_phase_table(trace);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIXTURE: &str = concat!(
        "{\"ev\":\"meta\",\"ts_us\":0,\"w\":-1,\"version\":1,\"design\":\"dr5\",\"workers\":1}\n",
        "{\"ev\":\"path_start\",\"ts_us\":2,\"w\":0,\"path\":0,\"cycle\":0}\n",
        "{\"ev\":\"fork\",\"ts_us\":4,\"w\":0,\"parent\":0,\"pc\":\"0x10\",\"first\":1,\"n\":1,\"want\":2,\"signals\":[5]}\n",
        "{\"ev\":\"path_end\",\"ts_us\":5,\"w\":0,\"path\":0,\"outcome\":\"split\",\"cycles\":9,\"children\":1,\"seg_us\":3}\n",
        "{\"ev\":\"path_start\",\"ts_us\":6,\"w\":0,\"path\":1,\"cycle\":9}\n",
        "{\"ev\":\"coverage\",\"ts_us\":7,\"w\":0,\"paths\":1,\"cycles\":9,\"covered\":30,\"total\":64}\n",
        "{\"ev\":\"path_end\",\"ts_us\":8,\"w\":0,\"path\":1,\"outcome\":\"finished\",\"cycles\":4,\"seg_us\":2}\n",
        "{\"ev\":\"cover_first\",\"ts_us\":9,\"w\":-1,\"net\":5,\"path\":1,\"cycle\":12,\"pc\":\"0x10\"}\n",
    );

    #[test]
    fn actions_run_on_a_fixture_trace() {
        let trace = Trace::parse(FIXTURE).unwrap();
        summarize(&trace).unwrap();
        lineage(&trace, 100).unwrap();
        hotspots(&trace, 5).unwrap();
        coverage(&trace).unwrap();
    }

    #[test]
    fn coverage_requires_an_attributed_trace() {
        // first line only: a trace with no coverage records
        let head = FIXTURE.lines().next().unwrap();
        let trace = Trace::parse(head).unwrap();
        let err = coverage(&trace).unwrap_err();
        assert!(err.contains("--attribution"), "{err}");
    }

    #[test]
    fn trace_cmd_rejects_unknown_actions_and_missing_files() {
        let args = Args::parse(&["frobnicate".into(), "nope.trace".into()]).unwrap();
        assert!(trace_cmd(&args).is_err());
        let args = Args::parse(&["summarize".into(), "/no/such/file.trace".into()]).unwrap();
        assert!(trace_cmd(&args).is_err());
    }
}
