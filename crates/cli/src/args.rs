//! Minimal flag parsing: `--flag value` pairs plus positional operands.

use std::collections::HashMap;

#[derive(Debug, Clone, Default)]
pub struct Args {
    pub positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Args {
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = argv.iter();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("--{name} expects a value"))?;
                if out.flags.insert(name.to_string(), value.clone()).is_some() {
                    return Err(format!("--{name} given twice"));
                }
            } else {
                out.positional.push(arg.clone());
            }
        }
        Ok(out)
    }

    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required --{name}"))
    }

    pub fn get_usize(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: bad number \"{v}\"")),
        }
    }

    pub fn get_u64(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: bad number \"{v}\"")),
        }
    }

    pub fn get_f64(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: bad number \"{v}\"")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = Args::parse(&argv("design.v --pc pc --workers 4 extra")).unwrap();
        assert_eq!(a.positional, vec!["design.v", "extra"]);
        assert_eq!(a.get("pc"), Some("pc"));
        assert_eq!(a.get_usize("workers", 1).unwrap(), 4);
        assert_eq!(a.get_usize("missing", 7).unwrap(), 7);
        assert_eq!(a.get_f64("missing-f", 0.5).unwrap(), 0.5);
        assert!(a.require("nope").is_err());
    }

    #[test]
    fn rejects_malformed() {
        assert!(Args::parse(&argv("--dangling")).is_err());
        assert!(Args::parse(&argv("--x 1 --x 2")).is_err());
        let a = Args::parse(&argv("--workers abc")).unwrap();
        assert!(a.get_usize("workers", 1).is_err());
    }
}
