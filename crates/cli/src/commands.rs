//! Subcommand implementations.

use std::fs;
use std::sync::Arc;
use std::time::Duration;

use symsim_core::{
    replay_witness, CoAnalysis, CoAnalysisConfig, CoAnalysisReport, CsmPolicy, DesignInterface,
    Witness,
};
use symsim_logic::Word;
use symsim_netlist::{Netlist, NetlistStats};
use symsim_obs::{
    info, tracefile, warn, Heartbeat, HeartbeatOut, Level, LogFormat, MetricsRegistry, TraceSink,
};
use symsim_sim::{EvalMode, HaltReason, MonitorSpec, SimConfig, Simulator, ToggleProfile};

use crate::args::Args;
use crate::files;

const USAGE: &str = "\
usage:
  symsim stats    <design.v>
  symsim lint     <design.v>
  symsim dot      <design.v> [--out graph.dot] [--profile profile.txt]
                  [--max-gates N]
  symsim analyze  <design.v> --program app.hex --pc <bus> --finish <net>
                  --monitor control_signals.ini
                  [--qualifier <net>] [--pmem pmem] [--dmem dmem]
                  [--inputs a,b,...] [--data a=v,...] [--constraints file]
                  [--csm-policy single|multi:N|adaptive] [--csm-max-states N]
                  [--csm-demote-widenings N] [--csm-demote-obs N]
                  [--workers N] [--max-cycles N]
                  [--max-paths N] [--profile-out profile.txt] [--power yes]
                  [--tagged yes] [--eval-mode event|batch|hybrid|cohort|compiled]
                  [--batch-threshold PCT] [--attribution yes]
  symsim explain  <design.v> ... (same flags as analyze) [--net <net>]
                  [--witness-out witness.json]
                  (run with first-exercise attribution and print the chosen
                  net's provenance: winning path, cycle, fork lineage, and
                  the branch decisions that reach it; default --net is the
                  hardest-won net — the latest first-exercise cycle)
  symsim replay   <design.v> --witness witness.json
                  (re-execute a witness deterministically in event mode and
                  check the net toggles at the witnessed cycle; exits
                  nonzero when the replay does not reproduce the toggle)
  symsim bespoke  <design.v> --profile profile.txt [--out bespoke.v]
  symsim simulate <design.v> --program app.hex --finish <net>
                  [--cycles N] [--pmem pmem] [--dmem dmem] [--data a=v,...]
                  [--watch net,net,...] [--vcd out.vcd]
                  [--eval-mode event|batch|hybrid|cohort|compiled]
  symsim fault    <design.v> --program app.hex [--cycles N]
                  [--pmem pmem] [--dmem dmem] [--data a=v,...]
                  [--max-faults N] [--observe net,net,...]
  symsim compile  <design.v> [--force yes] [--cache-dir DIR]
                  (build the native settle kernel --eval-mode compiled uses,
                  priming the cache; reports cache hit/miss and timings)
  symsim convert  <design.{v,blif}> --out <design.{v,blif}>
  symsim trace    summarize|lineage|hotspots|coverage|export-chrome
                  <run.trace> [--top N] [--max-lines N] [--out FILE]
  symsim runs     list|show|diff|regressions [--ledger FILE]
                  (query the persistent run ledger; see below)
                  runs list                 one line per recorded run
                  runs show [N|last]        full record N (1-based, default last)
                  runs diff [BASE] [CUR]    compare run CUR (default last)
                  [--against FILE]          against run BASE, or without BASE
                  [--mad-k K] [--rel PCT]   against the median of all earlier
                                            same-fingerprint runs; exits
                                            nonzero on verdict drift or a
                                            perf regression beyond the
                                            MAD noise band (K sigmas, PCT%
                                            relative floor); --against
                                            diffs against a baseline ledger
                                            file (e.g. the CI baseline)
                  runs regressions          diff every run against its
                                            predecessors; exits nonzero on
                                            verdict drift

every command also accepts the observability flags:
  --log-level error|warn|info|debug|trace   (default info)
  --log-format pretty|json                  (default pretty; json makes
                                             diagnostics NDJSON and analyze
                                             print its report as JSON)
  --metrics-out FILE      (analyze) write the end-of-run metrics snapshot
  --ledger FILE|off       (analyze, explain) where to append the run-ledger
                          record (default $SYMSIM_LEDGER, else
                          .symsim/ledger.ndjson; off disables)
  --heartbeat-secs S      (analyze) emit NDJSON progress every S seconds
  --progress-out FILE     (analyze) heartbeat destination (default stderr)
  --trace-out FILE        (analyze, simulate) record an NDJSON run trace:
                          path forks/outcomes, CSM decisions, span and
                          phase timings — inspect with symsim trace

designs are read as BLIF when the file ends in .blif, else as structural
Verilog";

pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err(USAGE.into());
    };
    if matches!(cmd.as_str(), "help" | "--help" | "-h") {
        println!("{USAGE}");
        return Ok(());
    }
    let args = Args::parse(rest)?;
    init_obs(&args)?;
    match cmd.as_str() {
        "stats" => stats(&args),
        "lint" => lint_cmd(&args),
        "dot" => dot_cmd(&args),
        "analyze" => analyze(&args),
        "explain" => explain(&args),
        "replay" => replay_cmd(&args),
        "bespoke" => bespoke(&args),
        "simulate" => simulate(&args),
        "fault" => fault_cmd(&args),
        "compile" => compile_cmd(&args),
        "convert" => convert(&args),
        "trace" => crate::trace_cmd::trace_cmd(&args),
        "runs" => crate::runs_cmd::runs_cmd(&args),
        other => Err(format!("unknown command \"{other}\"\n{USAGE}")),
    }
}

/// Whether `--log-format json` is active (machine-parseable output mode).
fn json_mode(args: &Args) -> bool {
    args.get("log-format") == Some("json")
}

/// Installs the trace sink from `--log-level` / `--log-format` before the
/// command runs. Without the flags this matches the built-in default
/// (pretty, info, stderr), so diagnostics look unchanged.
fn init_obs(args: &Args) -> Result<(), String> {
    let level: Level = args
        .get("log-level")
        .unwrap_or("info")
        .parse()
        .map_err(|e| format!("--log-level: {e}"))?;
    let format: LogFormat = args
        .get("log-format")
        .unwrap_or("pretty")
        .parse()
        .map_err(|e| format!("--log-format: {e}"))?;
    symsim_obs::trace::init(level, format, None);
    Ok(())
}

/// Opens the `--trace-out` run-trace sink and installs it as the global
/// span target. Returns `None` (and installs nothing) without the flag.
fn start_trace(args: &Args, workers: usize) -> Result<Option<Arc<TraceSink>>, String> {
    let Some(path) = args.get("trace-out") else {
        return Ok(None);
    };
    let sink =
        TraceSink::to_file(path, workers).map_err(|e| format!("cannot create {path}: {e}"))?;
    tracefile::install_global(&sink);
    Ok(Some(sink))
}

/// Merges, flushes, and uninstalls the run-trace sink; logs its totals.
fn finish_trace(args: &Args, sink: Option<Arc<TraceSink>>) {
    let Some(sink) = sink else { return };
    tracefile::clear_global();
    let stats = sink.finish();
    let path = args.get("trace-out").unwrap_or("?");
    info!(
        "trace",
        { events = stats.events, dropped = stats.dropped, bytes = stats.bytes },
        "wrote run trace to {path} ({} events, {} dropped, {} bytes)",
        stats.events,
        stats.dropped,
        stats.bytes
    );
}

/// Starts the heartbeat thread when `--heartbeat-secs` is given; records go
/// to `--progress-out` or stderr.
fn start_heartbeat(
    args: &Args,
    registry: &Arc<MetricsRegistry>,
) -> Result<Option<Heartbeat>, String> {
    let secs = args.get_f64("heartbeat-secs", 0.0)?;
    if secs <= 0.0 {
        return Ok(None);
    }
    let out = match args.get("progress-out") {
        Some(path) => {
            let file = fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            HeartbeatOut::Writer(Box::new(std::io::BufWriter::new(file)))
        }
        None => HeartbeatOut::Stderr,
    };
    Ok(Some(Heartbeat::start(
        Arc::clone(registry),
        Duration::from_secs_f64(secs),
        out,
    )))
}

/// Reads a design in either supported format, selected by extension
/// (`.blif` → BLIF, anything else → structural Verilog).
fn read_design(path: &str) -> Result<Netlist, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let netlist = if path.ends_with(".blif") {
        symsim_verilog::parse_blif(&text).map_err(|e| format!("{path}: {e}"))?
    } else {
        symsim_verilog::parse_netlist(&text).map_err(|e| format!("{path}: {e}"))?
    };
    netlist
        .validate()
        .map_err(|e| format!("{path}: invalid netlist: {e}"))?;
    Ok(netlist)
}

fn load_netlist(args: &Args) -> Result<Netlist, String> {
    let path = args
        .positional
        .first()
        .ok_or_else(|| format!("missing design file\n{USAGE}"))?;
    read_design(path)
}

fn stats(args: &Args) -> Result<(), String> {
    let netlist = load_netlist(args)?;
    print!("{}", NetlistStats::of(&netlist));
    Ok(())
}

fn lint_cmd(args: &Args) -> Result<(), String> {
    let netlist = load_netlist(args)?;
    let findings = symsim_netlist::lint::lint(&netlist);
    if findings.is_empty() {
        println!("{}: clean", netlist.name);
        return Ok(());
    }
    for finding in &findings {
        println!("warning: {finding}");
    }
    println!("{} finding(s)", findings.len());
    Ok(())
}

fn dot_cmd(args: &Args) -> Result<(), String> {
    let netlist = load_netlist(args)?;
    let mut options = symsim_netlist::dot::DotOptions {
        max_gates: args.get_usize("max-gates", 500)?,
        ..Default::default()
    };
    if let Some(path) = args.get("profile") {
        let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let profile = ToggleProfile::from_text(&text)?;
        if profile.len() != netlist.net_count() {
            return Err("profile does not match this design".into());
        }
        options
            .highlight_gates
            .extend(profile.exercisable_gates(&netlist));
    }
    let text = symsim_netlist::dot::to_dot(&netlist, &options);
    match args.get("out") {
        Some(path) => {
            fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
            info!("dot", "wrote {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

/// Shared design/application setup for `analyze` and `simulate`.
struct Setup {
    program: Vec<u32>,
    pmem: usize,
    dmem: usize,
    dmem_width: usize,
    dmem_depth: usize,
    data: Vec<(usize, u64)>,
    inputs: Vec<usize>,
}

impl Setup {
    fn from_args(args: &Args, netlist: &Netlist) -> Result<Setup, String> {
        let program_path = args.require("program")?;
        let text = fs::read_to_string(program_path)
            .map_err(|e| format!("cannot read {program_path}: {e}"))?;
        let program = files::parse_program(&text)?;
        let pmem = files::resolve_memory(netlist, args.get("pmem").unwrap_or("pmem"))?;
        let dmem = files::resolve_memory(netlist, args.get("dmem").unwrap_or("dmem"))?;
        if program.len() > netlist.memories()[pmem].depth {
            return Err(format!(
                "program ({} words) exceeds program memory ({} words)",
                program.len(),
                netlist.memories()[pmem].depth
            ));
        }
        let dmem_depth = netlist.memories()[dmem].depth;
        let data = args
            .get("data")
            .map(files::parse_data_init)
            .transpose()?
            .unwrap_or_default();
        let inputs = args
            .get("inputs")
            .map(files::parse_addr_list)
            .transpose()?
            .unwrap_or_default();
        for &addr in data.iter().map(|(a, _)| a).chain(&inputs) {
            if addr >= dmem_depth {
                return Err(format!(
                    "data address {addr} is outside the {dmem_depth}-word data memory"
                ));
            }
        }
        Ok(Setup {
            program,
            pmem,
            dmem,
            dmem_width: netlist.memories()[dmem].width,
            dmem_depth,
            data,
            inputs,
        })
    }

    fn apply(&self, sim: &mut Simulator<'_>, symbolic_inputs: bool, tagged: bool) {
        for (i, &w) in self.program.iter().enumerate() {
            sim.write_mem_word(self.pmem, i, &Word::from_u64(w as u64, 32));
        }
        for a in 0..self.dmem_depth {
            sim.write_mem_word(self.dmem, a, &Word::from_u64(0, self.dmem_width));
        }
        for &(a, v) in &self.data {
            sim.write_mem_word(self.dmem, a, &Word::from_u64(v, self.dmem_width));
        }
        if symbolic_inputs {
            let mut next_id = 0u32;
            for &a in &self.inputs {
                let word = if tagged {
                    let w = Word::symbols(next_id, self.dmem_width);
                    next_id += self.dmem_width as u32;
                    w
                } else {
                    Word::xs(self.dmem_width)
                };
                sim.write_mem_word(self.dmem, a, &word);
            }
        }
    }
}

fn parse_eval_mode(spec: Option<&str>) -> Result<EvalMode, String> {
    match spec {
        None => Ok(EvalMode::default()),
        Some(s) => s.parse().map_err(|e| format!("--eval-mode: {e}")),
    }
}

fn parse_batch_threshold(args: &Args) -> Result<u8, String> {
    let pct = args.get_usize(
        "batch-threshold",
        usize::from(SimConfig::default().batch_threshold_pct),
    )?;
    u8::try_from(pct)
        .ok()
        .filter(|&p| p <= 100)
        .ok_or_else(|| format!("--batch-threshold: expected a percentage 0-100, got {pct}"))
}

fn parse_policy(args: &Args) -> Result<CsmPolicy, String> {
    // --csm-policy is the canonical spelling; --policy remains an alias
    let spec = args.get("csm-policy").or_else(|| args.get("policy"));
    match spec {
        None | Some("single") => Ok(CsmPolicy::SingleMerge),
        Some("adaptive") => {
            let CsmPolicy::Adaptive {
                max_states,
                demote_widenings,
                demote_observations,
            } = CsmPolicy::adaptive()
            else {
                unreachable!("CsmPolicy::adaptive() is the Adaptive variant")
            };
            Ok(CsmPolicy::Adaptive {
                max_states: args.get_usize("csm-max-states", max_states)?.max(1),
                demote_widenings: args
                    .get_usize("csm-demote-widenings", demote_widenings)?
                    .max(1),
                demote_observations: args
                    .get_usize("csm-demote-obs", demote_observations)?
                    .max(1),
            })
        }
        Some(multi) => {
            let n = multi
                .strip_prefix("multi:")
                .and_then(|n| n.parse().ok())
                .ok_or_else(|| {
                    format!("--csm-policy: expected single, multi:N, or adaptive, got \"{multi}\"")
                })?;
            Ok(CsmPolicy::MultiState { max_states: n })
        }
    }
}

/// The shared co-analysis run behind `analyze` and `explain`: builds the
/// design interface and configuration from the flags, runs the exploration
/// (with first-exercise attribution when `attribution` is set), and returns
/// the report after tearing down the heartbeat and trace sink.
fn run_coanalysis(
    args: &Args,
    netlist: &Netlist,
    attribution: bool,
) -> Result<CoAnalysisReport, String> {
    let setup = Setup::from_args(args, netlist)?;

    let monitor_path = args.require("monitor")?;
    let monitor_text =
        fs::read_to_string(monitor_path).map_err(|e| format!("cannot read {monitor_path}: {e}"))?;
    let monitor = files::parse_monitor_file(&monitor_text)?;
    let qualifier = match args
        .get("qualifier")
        .map(String::from)
        .or(monitor.qualifier.clone())
    {
        Some(name) => Some(files::resolve_net(netlist, &name)?),
        None => None,
    };
    let signals = monitor
        .signals
        .iter()
        .map(|s| files::resolve_net(netlist, s))
        .collect::<Result<Vec<_>, _>>()?;
    let split_signals = if monitor.split.is_empty() {
        None
    } else {
        Some(
            monitor
                .split
                .iter()
                .map(|s| files::resolve_net(netlist, s))
                .collect::<Result<Vec<_>, _>>()?,
        )
    };
    let iface = DesignInterface {
        pc: files::resolve_bus(netlist, args.require("pc")?)?,
        monitor: MonitorSpec { qualifier, signals },
        split_signals,
        finish: files::resolve_net(netlist, args.require("finish")?)?,
    };

    let constraints = match args.get("constraints") {
        None => Vec::new(),
        Some(path) => {
            let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            files::parse_constraints(&text, netlist)?
        }
    };

    // --tagged yes: inputs become identified symbols and gates simplify on
    // recombination (paper Fig. 4 left)
    let tagged = args.get("tagged").is_some();
    let workers = args.get_usize("workers", 1)?.max(1);
    let registry = Arc::new(MetricsRegistry::new(workers));
    let trace_sink = start_trace(args, workers)?;
    let config = CoAnalysisConfig {
        sim: SimConfig {
            policy: if tagged {
                symsim_logic::PropagationPolicy::Tagged
            } else {
                symsim_logic::PropagationPolicy::Anonymous
            },
            eval_mode: parse_eval_mode(args.get("eval-mode"))?,
            batch_threshold_pct: parse_batch_threshold(args)?,
            attribution,
            ..SimConfig::default()
        },
        policy: parse_policy(args)?,
        constraints,
        max_cycles_per_segment: args.get_u64("max-cycles", 200_000)?,
        max_paths: args.get_usize("max-paths", 100_000)?,
        max_split_signals: args.get_usize("max-split", 6)?,
        workers,
        activity_weights: if args.get("power").is_some() {
            Some(symsim_power::switching_weights(netlist))
        } else {
            None
        },
        metrics: Some(Arc::clone(&registry)),
        trace: trace_sink.clone(),
    };

    // run identity, taken while the netlist/program/config are all in hand
    // (the config is consumed by CoAnalysis::new below)
    let design_fp = symsim_core::fingerprint::design_fingerprint(netlist);
    let program_fp = symsim_core::fingerprint::program_fingerprint(&setup.program);
    let config_str = symsim_core::fingerprint::config_string(&config);
    let label = format!(
        "{}/{}",
        netlist.name,
        std::path::Path::new(args.get("program").unwrap_or("?"))
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("?")
    );

    let heartbeat = start_heartbeat(args, &registry)?;
    let analysis = CoAnalysis::new(netlist, iface, config)?;
    let report = analysis.run(|sim| setup.apply(sim, true, tagged));
    if let Some(hb) = heartbeat {
        hb.stop();
    }
    finish_trace(args, trace_sink);

    // append to the persistent run ledger (--ledger FILE|off, else
    // $SYMSIM_LEDGER, else .symsim/ledger.ndjson); a ledger failure warns
    // but never fails the analysis that just succeeded
    if let Some(path) = symsim_obs::ledger::resolve_path(args.get("ledger")) {
        let record = report.ledger_record("analyze", &label, design_fp, program_fp, &config_str);
        match symsim_obs::ledger::append(&path, &record) {
            Ok(()) => info!("ledger", "appended run record to {}", path.display()),
            Err(e) => warn!("ledger", "cannot append run record: {e}"),
        }
    }
    Ok(report)
}

fn analyze(args: &Args) -> Result<(), String> {
    let netlist = load_netlist(args)?;
    let report = run_coanalysis(args, &netlist, args.get("attribution").is_some())?;

    if json_mode(args) {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
        println!(
            "paths: {} dropped by the path cap; evals: {} batched-level, {} event",
            report.paths_dropped, report.batched_level_evals, report.event_evals
        );
        if let Some(p) = &report.provenance {
            match p.convergence() {
                Some(c) => println!(
                    "provenance: {} nets attributed ({} at reset); 50/90/100% coverage \
                     after {}/{}/{} cycles",
                    p.attributed_count(),
                    p.reset_count(),
                    c.cycles_to_50,
                    c.cycles_to_90,
                    c.cycles_to_100
                ),
                None => println!(
                    "provenance: {} nets attributed ({} at reset)",
                    p.attributed_count(),
                    p.reset_count()
                ),
            }
        }
    }
    if !report.converged() {
        warn!(
            "analyze",
            { budget_exhausted = report.paths_budget_exhausted, dropped = report.paths_dropped },
            "{} paths exhausted the cycle budget — raise --max-cycles",
            report.paths_budget_exhausted
        );
    }
    if let Some(power) = symsim_power::PowerReport::from_report(&report) {
        let slack = symsim_power::timing_slack(&netlist, &report.profile);
        if json_mode(args) {
            info!("analyze.power", "power: {power}");
            info!(
                "analyze.timing",
                { exercised_depth = slack.exercised_depth, design_depth = slack.design_depth },
                "exercised depth {} of {} levels", slack.exercised_depth, slack.design_depth
            );
        } else {
            println!("power: {power}");
            println!(
                "timing: exercised depth {} of {} levels ({:.0}% headroom)",
                slack.exercised_depth,
                slack.design_depth,
                slack.headroom() * 100.0
            );
        }
    }
    if let Some(out) = args.get("metrics-out") {
        fs::write(out, report.metrics.to_json()).map_err(|e| format!("cannot write {out}: {e}"))?;
        info!("analyze", "wrote metrics snapshot to {out}");
    }
    if let Some(out) = args.get("profile-out") {
        fs::write(out, report.profile.to_text()).map_err(|e| format!("cannot write {out}: {e}"))?;
        info!("analyze", "wrote activity profile to {out}");
    }
    Ok(())
}

/// Runs the co-analysis with first-exercise attribution and prints one
/// net's provenance: the winning `(path, cycle, fork PC)`, the full fork
/// lineage with its forced branch decisions, and the replay prescription.
/// Defaults to the hardest-won net (latest first-exercise cycle).
fn explain(args: &Args) -> Result<(), String> {
    let netlist = load_netlist(args)?;
    let report = run_coanalysis(args, &netlist, true)?;
    let prov = report
        .provenance
        .as_ref()
        .ok_or("attributed run produced no provenance map")?;
    let attribution = match args.get("net") {
        Some(name) => {
            let net = files::resolve_net(&netlist, name)?;
            prov.attribution(net).ok_or_else(|| {
                format!("net \"{name}\" never toggles: it is unexercisable under this application")
            })?
        }
        None => prov
            .deepest()
            .ok_or("no nets were attributed — nothing to explain")?,
    };
    let net_name = netlist.net_name(attribution.net);

    println!(
        "{}: net {} (id {}) is first exercised at cycle {} by path {} (fork {})",
        prov.design(),
        net_name,
        attribution.net.0,
        attribution.cycle,
        attribution.path,
        attribution.pc
    );
    if attribution.reset {
        println!("  reset attribution: the net was already unknown when the observer armed");
    }
    let hops = prov
        .lineage(attribution.path)
        .ok_or("winning path has no recorded fork lineage")?;
    println!("  lineage ({} hops):", hops.len());
    for hop in &hops {
        let forces: Vec<String> = hop
            .forces
            .iter()
            .map(|&(net, bit)| format!("{}={}", netlist.net_name(net), u8::from(bit)))
            .collect();
        if forces.is_empty() {
            println!("    path {} @ {}", hop.path, hop.pc);
        } else {
            println!(
                "    path {} @ {} forcing {}",
                hop.path,
                hop.pc,
                forces.join(", ")
            );
        }
    }
    let witness = prov
        .witness(attribution.net, net_name)
        .ok_or("cannot extract a witness for the attributed net")?;
    println!(
        "  prescription: load the fork snapshot (cycle {}), force {} signal(s), \
         run to cycle {}",
        witness.snapshot.cycle,
        witness.forces.len(),
        witness.cycle
    );
    if let Some(out) = args.get("witness-out") {
        let mut text = witness.to_json();
        text.push('\n');
        fs::write(out, text).map_err(|e| format!("cannot write {out}: {e}"))?;
        info!("explain", "wrote witness to {out}");
    }
    Ok(())
}

/// Replays a witness produced by `explain --witness-out` against the design
/// and fails unless the net re-toggles at the witnessed cycle.
fn replay_cmd(args: &Args) -> Result<(), String> {
    let netlist = load_netlist(args)?;
    let path = args.require("witness")?;
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let witness = Witness::from_json(text.trim()).map_err(|e| format!("{path}: {e}"))?;
    let result = replay_witness(&netlist, &witness)?;
    println!(
        "replay {} (net {} \"{}\", {}): {}",
        witness.design,
        witness.net.0,
        witness.net_name,
        if witness.reset { "reset" } else { "toggle" },
        result
    );
    if result.ok() {
        Ok(())
    } else {
        Err(format!("replay did not reproduce the witness: {result}"))
    }
}

fn bespoke(args: &Args) -> Result<(), String> {
    let netlist = load_netlist(args)?;
    let profile_path = args.require("profile")?;
    let text =
        fs::read_to_string(profile_path).map_err(|e| format!("cannot read {profile_path}: {e}"))?;
    let profile = ToggleProfile::from_text(&text)?;
    if profile.len() != netlist.net_count() {
        return Err(format!(
            "profile covers {} nets but the design has {}",
            profile.len(),
            netlist.net_count()
        ));
    }
    let result = symsim_bespoke::generate(&netlist, &profile);
    println!(
        "bespoke: {} -> {} gates ({:.2}% reduction), area {:.0} -> {:.0}",
        result.report.original_gates,
        result.report.bespoke_gates,
        result.report.reduction_percent(),
        result.report.original_area,
        result.report.bespoke_area
    );
    if let Some(out) = args.get("out") {
        fs::write(out, symsim_verilog::write_netlist(&result.netlist))
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        info!("bespoke", "wrote bespoke netlist to {out}");
    }
    Ok(())
}

fn simulate(args: &Args) -> Result<(), String> {
    let netlist = load_netlist(args)?;
    let setup = Setup::from_args(args, &netlist)?;
    let finish = files::resolve_net(&netlist, args.require("finish")?)?;
    let cycles = args.get_u64("cycles", 100_000)?;

    let trace_sink = start_trace(args, 1)?;
    if let Some(sink) = &trace_sink {
        sink.emit_meta(&netlist.name, 1);
    }
    let sim_config = SimConfig {
        eval_mode: parse_eval_mode(args.get("eval-mode"))?,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&netlist, sim_config);
    setup.apply(&mut sim, false, false);
    for &inp in netlist.inputs() {
        sim.poke(inp, symsim_logic::Value::ZERO);
    }
    sim.set_finish_net(finish);
    sim.settle();
    let run_span = symsim_obs::trace::span("simulate");
    let reason = if let Some(vcd_path) = args.get("vcd") {
        // waveform-enabled run: sample the watched nets every cycle
        let watch_nets: Vec<_> = match args.get("watch") {
            Some(watch) => {
                let mut nets = Vec::new();
                for name in watch.split(',').filter(|s| !s.trim().is_empty()) {
                    nets.extend(files::resolve_bus(&netlist, name.trim())?);
                }
                nets
            }
            None => netlist.outputs().to_vec(),
        };
        let file =
            fs::File::create(vcd_path).map_err(|e| format!("cannot create {vcd_path}: {e}"))?;
        let mut writer = std::io::BufWriter::new(file);
        let mut vcd = symsim_sim::VcdWriter::new(&mut writer, &netlist, &watch_nets)
            .map_err(|e| format!("vcd: {e}"))?;
        let mut reason = HaltReason::MaxCycles;
        for _ in 0..cycles {
            vcd.sample(&sim).map_err(|e| format!("vcd: {e}"))?;
            if let Some(r) = sim.step_cycle() {
                reason = r;
                break;
            }
        }
        info!("simulate", "wrote waveform to {vcd_path}");
        reason
    } else {
        sim.run(cycles)
    };
    drop(run_span);
    finish_trace(args, trace_sink);
    match reason {
        HaltReason::Finished => println!("finished after {} cycles", sim.cycle()),
        other => println!("stopped ({other:?}) after {} cycles", sim.cycle()),
    }
    if let Some(watch) = args.get("watch") {
        for name in watch.split(',').filter(|s| !s.trim().is_empty()) {
            let bus = files::resolve_bus(&netlist, name.trim())?;
            println!("{name} = {}", sim.read_bus(&bus));
        }
    }
    Ok(())
}

/// Converts between the supported netlist formats (by output extension).
/// Builds (or fetches from cache) the native settle kernel for a design,
/// priming the cache `--eval-mode compiled` runs hit. `--force yes`
/// rebuilds even on a cache hit; `--cache-dir` overrides the cache
/// location (else `$SYMSIM_KERNEL_CACHE`, else the system temp dir).
fn compile_cmd(args: &Args) -> Result<(), String> {
    let netlist = load_netlist(args)?;
    let opts = symsim_compile::PrepareOpts {
        cache_dir: args.get("cache-dir").map(std::path::PathBuf::from),
        force_rebuild: args.get("force").is_some(),
    };
    let kernel = symsim_compile::CompiledKernel::prepare(&netlist, &opts)
        .map_err(|e| format!("cannot build native kernel for {}: {e}", netlist.name))?;
    let info = kernel.info();
    info!(
        "compile",
        {
            design = netlist.name.as_str(),
            cache_hit = info.cache_hit,
            codegen_us = info.codegen_us,
            load_us = info.load_us,
            gates_emitted = info.gates_emitted as u64,
            gates_folded = info.gates_folded as u64,
            levels = info.levels as u64
        },
        "native settle kernel ready"
    );
    println!(
        "{}: kernel {} ({:016x})\n  dylib: {}\n  levels: {}  segments: {}  \
         gates emitted: {}  folded: {}\n  codegen+rustc: {} us  load: {} us",
        netlist.name,
        if info.cache_hit { "cache hit" } else { "built" },
        info.design_hash,
        info.dylib_path.display(),
        info.levels,
        kernel.segments().len(),
        info.gates_emitted,
        info.gates_folded,
        info.codegen_us,
        info.load_us,
    );
    Ok(())
}

fn convert(args: &Args) -> Result<(), String> {
    let netlist = load_netlist(args)?;
    let out = args.require("out")?;
    let text = if out.ends_with(".blif") {
        symsim_verilog::write_blif(&netlist).map_err(|e| e.to_string())?
    } else {
        symsim_verilog::write_netlist(&netlist)
    };
    fs::write(out, text).map_err(|e| format!("cannot write {out}: {e}"))?;
    info!(
        "convert",
        { gates = netlist.gate_count(), dffs = netlist.dff_count() },
        "wrote {out} ({} gates, {} flip-flops)",
        netlist.gate_count(),
        netlist.dff_count()
    );
    Ok(())
}

/// Fault grading: run the application as the test stimulus and measure
/// which stuck-at faults it detects at the observed nets.
fn fault_cmd(args: &Args) -> Result<(), String> {
    let netlist = load_netlist(args)?;
    let setup = Setup::from_args(args, &netlist)?;
    let cycles = args.get_u64("cycles", 2_000)?;
    let max_faults = args.get_usize("max-faults", 2_000)?;

    let mut sim = Simulator::new(&netlist, SimConfig::default());
    setup.apply(&mut sim, false, false);
    for &inp in netlist.inputs() {
        sim.poke(inp, symsim_logic::Value::ZERO);
    }
    sim.settle();

    let mut faults = symsim_sim::fault::all_output_faults(&netlist);
    if faults.len() > max_faults {
        // deterministic thinning keeps the sample spread across the design
        let stride = faults.len().div_ceil(max_faults);
        faults = faults.into_iter().step_by(stride).collect();
        info!(
            "fault",
            { graded = faults.len() },
            "grading a deterministic sample of {} faults (--max-faults)",
            faults.len()
        );
    }
    let report = symsim_sim::fault::grade(&mut sim, &faults, cycles, |_, _| {});
    println!(
        "fault coverage: {:.2}% ({} detected / {} graded) over {} cycles; {} simulated cycles total",
        report.coverage_percent(),
        report.detected,
        report.detected + report.undetected.len(),
        cycles,
        report.simulated_cycles
    );
    if let Some(spec) = args.get("observe") {
        // informational: show the observed nets' fault-free final values
        for name in spec.split(',').filter(|s| !s.trim().is_empty()) {
            let bus = files::resolve_bus(&netlist, name.trim())?;
            println!("{name} = {}", sim.read_bus(&bus));
        }
    }
    for fault in report.undetected.iter().take(10) {
        println!(
            "undetected: {} stuck-at-{}",
            netlist.net_name(fault.net),
            u8::from(fault.stuck_at_one)
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_on_no_command() {
        assert!(dispatch(&[]).is_err());
        assert!(dispatch(&["frobnicate".into()]).is_err());
    }

    #[test]
    fn policy_parsing() {
        let parse = |argv: &[&str]| {
            let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
            parse_policy(&Args::parse(&argv).unwrap())
        };
        assert_eq!(parse(&[]).unwrap(), CsmPolicy::SingleMerge);
        assert_eq!(
            parse(&["--csm-policy", "single"]).unwrap(),
            CsmPolicy::SingleMerge
        );
        assert_eq!(
            parse(&["--csm-policy", "multi:3"]).unwrap(),
            CsmPolicy::MultiState { max_states: 3 }
        );
        // --policy stays as a compatible alias
        assert_eq!(
            parse(&["--policy", "multi:2"]).unwrap(),
            CsmPolicy::MultiState { max_states: 2 }
        );
        assert_eq!(
            parse(&["--csm-policy", "adaptive"]).unwrap(),
            CsmPolicy::adaptive()
        );
        assert_eq!(
            parse(&[
                "--csm-policy",
                "adaptive",
                "--csm-max-states",
                "6",
                "--csm-demote-widenings",
                "3",
                "--csm-demote-obs",
                "9",
            ])
            .unwrap(),
            CsmPolicy::Adaptive {
                max_states: 6,
                demote_widenings: 3,
                demote_observations: 9
            }
        );
        assert!(parse(&["--csm-policy", "weird"]).is_err());
        assert!(parse(&["--csm-policy", "adaptive", "--csm-max-states", "x"]).is_err());
    }

    #[test]
    fn eval_mode_parsing() {
        assert_eq!(parse_eval_mode(None).unwrap(), EvalMode::default());
        assert_eq!(parse_eval_mode(Some("event")).unwrap(), EvalMode::Event);
        assert_eq!(parse_eval_mode(Some("batch")).unwrap(), EvalMode::Batch);
        assert_eq!(parse_eval_mode(Some("hybrid")).unwrap(), EvalMode::Hybrid);
        assert_eq!(parse_eval_mode(Some("cohort")).unwrap(), EvalMode::Cohort);
        assert_eq!(
            parse_eval_mode(Some("compiled")).unwrap(),
            EvalMode::Compiled
        );
        assert!(parse_eval_mode(Some("turbo")).is_err());
    }

    #[test]
    fn batch_threshold_parsing() {
        let ok = Args::parse(&["--batch-threshold".into(), "35".into()]).unwrap();
        assert_eq!(parse_batch_threshold(&ok).unwrap(), 35);
        let default = Args::parse(&[]).unwrap();
        assert_eq!(
            parse_batch_threshold(&default).unwrap(),
            SimConfig::default().batch_threshold_pct
        );
        let over = Args::parse(&["--batch-threshold".into(), "101".into()]).unwrap();
        assert!(parse_batch_threshold(&over).is_err());
    }
}
